//! Shared machinery for the per-figure/per-table benchmark harnesses.
//!
//! Every evaluation artifact of the paper has a bench target in
//! `benches/` that prints the corresponding rows/series; this library holds
//! the runners they share. Bench targets use `harness = false` so that
//! `cargo bench` regenerates the whole evaluation.

#![forbid(unsafe_code)]

use mggcn_baselines::{cagnet, dgl};
use mggcn_core::config::{GcnConfig, TrainOptions};
use mggcn_core::problem::Problem;
use mggcn_core::trainer::Trainer;
use mggcn_core::EpochReport;
use mggcn_gpusim::engine::OpDesc;
use mggcn_gpusim::{Category, MachineSpec, OpId, Schedule, Timeline, Work};
use mggcn_graph::tilestats::TileStats;
use mggcn_graph::DatasetCard;

/// Simulate one MG-GCN epoch from a dataset card; `None` when it OOMs.
pub fn mggcn_epoch(
    card: &DatasetCard,
    cfg: &GcnConfig,
    machine: MachineSpec,
    gpus: usize,
) -> Option<EpochReport> {
    let opts = TrainOptions::full(machine, gpus);
    mggcn_epoch_with(card, cfg, opts)
}

/// Simulate one MG-GCN epoch with explicit options (for ablations).
pub fn mggcn_epoch_with(
    card: &DatasetCard,
    cfg: &GcnConfig,
    opts: TrainOptions,
) -> Option<EpochReport> {
    let problem = Problem::from_stats(card, &opts);
    let mut t = Trainer::new(problem, cfg.clone(), opts).ok()?;
    t.train_epoch().ok()
}

/// Simulate one DGL-like epoch; `None` on OOM.
pub fn dgl_epoch(card: &DatasetCard, cfg: &GcnConfig, machine: MachineSpec) -> Option<f64> {
    let opts = dgl::options(machine, cfg);
    let problem = Problem::from_stats(card, &opts);
    let mut t = Trainer::new(problem, cfg.clone(), opts).ok()?;
    Some(t.train_epoch().ok()?.sim_seconds)
}

/// Simulate one CAGNET-like epoch; `None` on OOM.
pub fn cagnet_epoch(
    card: &DatasetCard,
    cfg: &GcnConfig,
    machine: MachineSpec,
    gpus: usize,
) -> Option<f64> {
    let opts = cagnet::options(machine, gpus);
    let problem = Problem::from_stats(card, &opts);
    let mut t = Trainer::new(problem, cfg.clone(), opts).ok()?;
    Some(t.train_epoch().ok()?.sim_seconds)
}

/// Format an optional epoch time the way the paper's figures mark OOM.
pub fn fmt_time(t: Option<f64>) -> String {
    match t {
        Some(v) if v >= 0.1 => format!("{v:.3}"),
        Some(v) => format!("{v:.4}"),
        None => "OOM".to_string(),
    }
}

/// Print a fixed-width table row.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells.iter().zip(widths).map(|(c, w)| format!("{c:>w$}", w = w)).collect::<Vec<_>>().join("  ")
}

/// Build and run one staged broadcast-SpMM (the §4.1 pipeline in
/// isolation) and return its timeline — the exact content of the paper's
/// Figs 6 and 8. `overlap` selects the §4.3 two-stream schedule.
pub fn staged_spmm_timeline(
    stats: &TileStats,
    d: usize,
    machine: MachineSpec,
    overlap: bool,
) -> (Timeline, f64) {
    let p = stats.parts();
    let cost = mggcn_gpusim::CostModel::default();
    let group: Vec<usize> = (0..p).collect();
    let comm_stream = usize::from(overlap);
    let lanes: Vec<(usize, usize)> = group.iter().map(|&g| (g, comm_stream)).collect();
    let mut sched: Schedule<()> = Schedule::new(machine.clone());
    let mut bc_readers: [Vec<OpId>; 2] = [Vec::new(), Vec::new()];
    for s in 0..p {
        let rows = stats.rows_of(s);
        let bytes = rows as f64 * d as f64 * 4.0;
        let bw = machine.broadcast_bw(s, &group);
        let bcast = sched.collective(
            &lanes,
            bytes,
            bw,
            OpDesc::staged(Category::Comm, "bcast", s),
            &bc_readers[s % 2].clone(),
            None,
        );
        let mut readers = Vec::with_capacity(p);
        for j in 0..p {
            let work = cost.spmm(
                &machine.gpus[j],
                stats.rows_of(j) as u64,
                rows as u64,
                stats.nnz(j, s),
                d as u64,
                s > 0,
            );
            let op =
                sched.launch(j, 0, work, OpDesc::staged(Category::SpMM, "spmm", s), &[bcast], None);
            readers.push(op);
        }
        bc_readers[s % 2] = readers;
    }
    let run = sched.run(&());
    (run.timeline, run.makespan)
}

/// Busy compute time of one GPU in a staged-SpMM timeline.
pub fn gpu_compute_time(tl: &Timeline, gpu: usize) -> f64 {
    tl.gpu_category_time(gpu, Category::SpMM)
}

/// Build and run the **1.5D** staged SpMM (CAGNET's replication-2 variant,
/// §5.1): the GPUs split into two groups that each hold a full replica of
/// the feature matrix partitioned `P/2` ways. Each group runs its own
/// broadcast rounds concurrently (half the stages each), then the partial
/// results are reduced across the group boundary. Uses twice the feature
/// memory; communication per §5.1's arithmetic.
pub fn staged_spmm_15d_timeline(
    stats: &TileStats,
    d: usize,
    machine: MachineSpec,
    overlap: bool,
) -> (Timeline, f64) {
    let p = stats.parts();
    assert!(p >= 4 && p.is_multiple_of(2), "1.5D needs an even GPU count ≥ 4");
    let half = p / 2;
    let cost = mggcn_gpusim::CostModel::default();
    let comm_stream = usize::from(overlap);
    let mut sched: Schedule<()> = Schedule::new(machine.clone());
    let groups: [Vec<usize>; 2] = [(0..half).collect(), (half..p).collect()];
    let mut bc_readers: [[Vec<OpId>; 2]; 2] = Default::default();
    let mut last_spmm: Vec<Vec<OpId>> = vec![Vec::new(); p];

    // Feature rows are partitioned half-ways; group g handles stages
    // g*half..(g+1)*half of the original P-way stage space, i.e. each
    // group covers half the column tiles against its full replica.
    for s_local in 0..half {
        for (gidx, group) in groups.iter().enumerate() {
            let s = gidx * half + s_local;
            // Map the P-way tile stats onto the half-way partition: the
            // half-partition part `s_local` of group gidx covers original
            // parts {s} and {s ^ half-interleaved}; approximate rows by
            // doubling the P-way part.
            let rows = stats.rows_of(s % p) + stats.rows_of((s + half) % p);
            let bytes = rows as f64 * d as f64 * 4.0;
            let root = group[s_local % half];
            let bw = machine.broadcast_bw(root, group);
            let lanes: Vec<(usize, usize)> = group.iter().map(|&g| (g, comm_stream)).collect();
            let waits = bc_readers[gidx][s_local % 2].clone();
            let bcast = sched.collective(
                &lanes,
                bytes,
                bw,
                OpDesc::staged(Category::Comm, "bcast-15d", s),
                &waits,
                None,
            );
            let mut readers = Vec::with_capacity(half);
            for &j in group {
                // Each GPU covers two of the P-way tiles per stage (the
                // replica is half-partitioned), same total nnz as 1D.
                let nnz = stats.nnz(j % half, s % p) + stats.nnz(j % half + half, s % p);
                let work = cost.spmm(
                    &machine.gpus[j],
                    rows as u64,
                    rows as u64,
                    nnz,
                    d as u64,
                    s_local > 0,
                );
                let op = sched.launch(
                    j,
                    0,
                    work,
                    OpDesc::staged(Category::SpMM, "spmm-15d", s),
                    &[bcast],
                    None,
                );
                readers.push(op);
                if s_local == half - 1 {
                    last_spmm[j].push(op);
                }
            }
            bc_readers[gidx][s_local % 2] = readers;
        }
    }

    // Cross-group reduction: each GPU pair (j, j + half) combines partials.
    for j in 0..half {
        let pair = vec![j, j + half];
        let rows = stats.rows_of(j) + stats.rows_of(j + half);
        let bytes = rows as f64 * d as f64 * 4.0;
        let bw = machine.reduce_bw(j, &pair);
        let lanes: Vec<(usize, usize)> = pair.iter().map(|&g| (g, comm_stream)).collect();
        let waits: Vec<OpId> = last_spmm[j].iter().chain(&last_spmm[j + half]).copied().collect();
        sched.collective(
            &lanes,
            bytes,
            bw,
            OpDesc::new(Category::Comm, "reduce-15d"),
            &waits,
            None,
        );
    }

    let run = sched.run(&());
    (run.timeline, run.makespan)
}

/// Extra work descriptor helpers for criterion kernel benches.
pub fn demo_work() -> Work {
    Work::Fixed { seconds: 0.0 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mggcn_graph::datasets;
    use mggcn_graph::tilestats::VertexOrdering;

    #[test]
    fn staged_spmm_overlap_is_faster() {
        let stats = TileStats::model(&datasets::PRODUCTS, 4, VertexOrdering::Permuted);
        let m = MachineSpec::dgx_v100();
        let (_, t_ovlp) = staged_spmm_timeline(&stats, 512, m.clone(), true);
        let (_, t_serial) = staged_spmm_timeline(&stats, 512, m, false);
        assert!(t_ovlp < t_serial, "overlap {t_ovlp} should beat serial {t_serial}");
    }

    #[test]
    fn permuted_staged_spmm_is_balanced() {
        let m = MachineSpec::dgx_v100();
        let orig = TileStats::model(&datasets::PRODUCTS, 4, VertexOrdering::Original);
        let perm = TileStats::model(&datasets::PRODUCTS, 4, VertexOrdering::Permuted);
        let (_, t_orig) = staged_spmm_timeline(&orig, 512, m.clone(), false);
        let (_, t_perm) = staged_spmm_timeline(&perm, 512, m, false);
        assert!(t_perm < t_orig, "permuted {t_perm} vs original {t_orig}");
    }

    #[test]
    fn runners_return_values() {
        let cfg = GcnConfig::model_a(128, 40);
        let m = MachineSpec::dgx_a100();
        assert!(mggcn_epoch(&datasets::ARXIV, &cfg, m.clone(), 4).is_some());
        assert!(dgl_epoch(&datasets::ARXIV, &cfg, m.clone()).is_some());
        assert!(cagnet_epoch(&datasets::ARXIV, &cfg, m, 4).is_some());
    }

    #[test]
    fn fmt_time_marks_oom() {
        assert_eq!(fmt_time(None), "OOM");
        assert_eq!(fmt_time(Some(1.5)), "1.500");
        assert_eq!(fmt_time(Some(0.0123)), "0.0123");
    }
}
