//! Table 2 — DistGNN epoch times (seconds): the numbers the paper quotes
//! from the DistGNN publication, alongside our CPU-cluster cost model's
//! reproduction of them.
//!
//! §6.6 context: MG-GCN at 8 GPUs beats DistGNN's best published numbers
//! by 40× (Reddit), 12.6× (Papers), 12.4× (Products), 1.77× (Proteins);
//! see `table3_a100` for the MG-GCN side.

use mggcn_baselines::distgnn::{modeled_epoch_time, published_epoch_time, SocketSpec};
use mggcn_core::config::GcnConfig;
use mggcn_graph::datasets::{PAPERS, PRODUCTS, PROTEINS, REDDIT};

fn main() {
    println!("Table 2: DistGNN epoch times (s) — published vs our CPU-cluster model");
    println!("{:<10} {:>8} {:>12} {:>12}", "Dataset", "#Socket", "published", "modeled");
    let spec = SocketSpec::default();
    let rows = [
        ("Reddit", REDDIT, GcnConfig::model_b(REDDIT.feat_dim, REDDIT.classes), vec![1usize, 16]),
        ("Papers", PAPERS, GcnConfig::model_c(PAPERS.feat_dim, PAPERS.classes), vec![1, 128]),
        (
            "Products",
            PRODUCTS,
            GcnConfig::model_c(PRODUCTS.feat_dim, PRODUCTS.classes),
            vec![1, 64],
        ),
        (
            "Proteins",
            PROTEINS,
            GcnConfig::model_c(PROTEINS.feat_dim, PROTEINS.classes),
            vec![1, 64],
        ),
    ];
    for (name, card, cfg, sockets) in rows {
        for s in sockets {
            let published =
                published_epoch_time(name, s).map(|t| format!("{t:.2}")).unwrap_or("-".into());
            let modeled = modeled_epoch_time(&card, &cfg, s, &spec);
            println!("{:<10} {:>8} {:>12} {:>12.2}", name, s, published, modeled);
        }
    }
    println!();
    println!("(published values are Table 2 of the MG-GCN paper, quoted from DistGNN;");
    println!(" the model is calibrated within a small factor — see EXPERIMENTS.md)");
}
