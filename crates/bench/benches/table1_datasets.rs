//! Table 1 — Benchmark Datasets: n, m, d(0), d(L), k.
//!
//! Prints the dataset stat cards this reproduction uses (the paper's exact
//! values) plus, for the materializable small replicas, the realized
//! statistics of the synthetic graphs.

use mggcn_graph::datasets::{scaled_arxiv, BENCHMARKS};

fn human(x: usize) -> String {
    if x >= 1_000_000_000 {
        format!("{:.2}B", x as f64 / 1e9)
    } else if x >= 1_000_000 {
        format!("{:.2}M", x as f64 / 1e6)
    } else if x >= 1_000 {
        format!("{:.1}K", x as f64 / 1e3)
    } else {
        x.to_string()
    }
}

fn main() {
    println!("Table 1: Benchmark Datasets");
    println!("{:<10} {:>9} {:>9} {:>7} {:>6} {:>6}", "Dataset", "n", "m", "d(0)", "d(L)", "k");
    for card in BENCHMARKS {
        println!(
            "{:<10} {:>9} {:>9} {:>7} {:>6} {:>6.0}",
            card.name,
            human(card.n),
            human(card.m),
            card.feat_dim,
            card.classes,
            card.avg_degree
        );
    }
    println!();
    println!("Synthetic BTER family (Fig 9 input): Arxiv degree profile, scaled average degree");
    println!("{:<6} {:>9} {:>9} {:>7} {:>6} {:>7}", "Name", "n", "m", "d(0)", "d(L)", "k");
    for e in 0..8u32 {
        let card = scaled_arxiv(1 << e);
        println!(
            "{:<6} {:>9} {:>9} {:>7} {:>6} {:>7.0}",
            card.name,
            human(card.n),
            human(card.m),
            card.feat_dim,
            card.classes,
            card.avg_degree
        );
    }
    println!();
    println!("Realized replica statistics (materialized at small scale):");
    println!(
        "{:<10} {:>7} {:>9} {:>7} {:>7} {:>7} {:>7}",
        "Replica", "n", "m", "k", "max", "CV", "Gini"
    );
    for (card, scale) in [
        (mggcn_graph::datasets::ARXIV, 0.03),
        (mggcn_graph::datasets::PRODUCTS, 0.002),
        (mggcn_graph::datasets::REDDIT, 0.02),
    ] {
        let g = card.materialize(scale, 42);
        let s = mggcn_graph::metrics::degree_stats(&g.adj);
        println!(
            "{:<10} {:>7} {:>9} {:>7.1} {:>7} {:>7.2} {:>7.2}",
            card.name, s.n, s.m, s.mean, s.max, s.cv, s.gini
        );
    }
    println!();
    println!("(replicas preserve each card's average degree and heavy-tail shape;");
    println!(" CV and Gini quantify the skew the §5.2 permutation must balance)");
}
