//! Ablation — §6.3's closing claim: "the size of the hidden dimension
//! doesn't have an effect on our ability to overlap communication and
//! computation as both of their runtimes scale linearly with the size of
//! the hidden dimension if it is above a certain threshold."
//!
//! We sweep the hidden width and report the overlap benefit
//! (non-overlapped / overlapped epoch time) — it should be flat above a
//! small threshold, and degraded below it where fixed latencies dominate.

use mggcn_bench::mggcn_epoch_with;
use mggcn_core::config::{GcnConfig, TrainOptions};
use mggcn_gpusim::MachineSpec;
use mggcn_graph::datasets::{PRODUCTS, REDDIT};

fn epoch(card: &mggcn_graph::DatasetCard, hidden: usize, overlap: bool) -> Option<f64> {
    let cfg = GcnConfig::new(card.feat_dim, &[hidden], card.classes);
    let mut opts = TrainOptions::full(MachineSpec::dgx_v100(), 8);
    opts.overlap = overlap;
    mggcn_epoch_with(card, &cfg, opts).map(|r| r.sim_seconds)
}

fn main() {
    println!("Ablation: overlap benefit vs hidden dimension (§6.3), DGX-V100, 8 GPUs");
    println!(
        "{:<10} {:>8} {:>12} {:>12} {:>10}",
        "Dataset", "hidden", "serial (s)", "overlap (s)", "benefit"
    );
    for card in [PRODUCTS, REDDIT] {
        for hidden in [8usize, 32, 128, 512, 1024] {
            match (epoch(&card, hidden, false), epoch(&card, hidden, true)) {
                (Some(s), Some(o)) => println!(
                    "{:<10} {:>8} {:>12.4} {:>12.4} {:>9.2}x",
                    card.name,
                    hidden,
                    s,
                    o,
                    s / o
                ),
                _ => println!("{:<10} {:>8}  Out of Memory", card.name, hidden),
            }
        }
        println!();
    }
    println!("(the benefit column should be roughly constant above a small hidden");
    println!(" width — the §6.3 claim — since broadcast bytes and SpMM traffic both");
    println!(" scale linearly with the width)");
}
