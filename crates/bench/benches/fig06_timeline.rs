//! Fig 6 — Timeline of the staged SpMM on Products (4 GPUs), original vs
//! permuted vertex ordering.
//!
//! Paper's headline: the original ordering has a badly imbalanced stage
//! (one GPU's tiles carry far more nonzeros), and permutation drops the
//! SpMM from ~50 ms to ~38 ms.

use mggcn_bench::{gpu_compute_time, staged_spmm_timeline};
use mggcn_gpusim::MachineSpec;
use mggcn_graph::datasets::PRODUCTS;
use mggcn_graph::tilestats::{TileStats, VertexOrdering};

fn show(ordering: VertexOrdering, label: &str) -> f64 {
    let stats = TileStats::model(&PRODUCTS, 4, ordering);
    let (tl, total) = staged_spmm_timeline(&stats, 512, MachineSpec::dgx_v100(), false);
    println!("{label}: SpMM completes in {:.1} ms", total * 1e3);
    println!("  per-GPU compute busy time (ms): ");
    for g in 0..4 {
        println!("    GPU {g}: {:>6.1}", gpu_compute_time(&tl, g) * 1e3);
    }
    println!("  stage imbalance (max/mean per stage): ");
    for s in 0..4 {
        println!("    stage {s}: {:.2}", stats.stage_imbalance(s));
    }
    println!("{}", tl.ascii_gantt(72));
    total
}

fn main() {
    println!("Fig 6: staged SpMM timeline, Products, 4 GPUs, DGX-V100, d=512");
    println!("(digits are stage ids; compute stream shown per GPU)\n");
    let t_orig = show(VertexOrdering::Original, "Original ordering");
    println!();
    let t_perm = show(VertexOrdering::Permuted, "Permuted ordering");
    println!();
    println!(
        "original {:.1} ms -> permuted {:.1} ms ({:.2}x improvement; paper: 50 ms -> 38 ms)",
        t_orig * 1e3,
        t_perm * 1e3,
        t_orig / t_perm
    );
}
