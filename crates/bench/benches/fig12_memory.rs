//! Fig 12 — Per-GPU memory consumption on Reddit (h = 512) as the layer
//! count grows: (a) single GPU, DGL vs MG-GCN; (b) 8 GPUs, CAGNET vs
//! MG-GCN.
//!
//! Paper's headline: at a 30 GiB budget, DGL fits ~20 layers vs MG-GCN's
//! ~50 on one GPU; CAGNET fits ~150 vs MG-GCN's ~450 on 8 GPUs. Memory
//! grows linearly in the layer count for all systems.

use mggcn_core::config::GcnConfig;
use mggcn_core::memplan::{max_layers, BufferPolicy, MemoryPlan};

const N: u64 = 233_000;
const M: u64 = 115_000_000;
const GIB30: u64 = 30 * (1 << 30);

fn gib(bytes: u64) -> f64 {
    bytes as f64 / (1u64 << 30) as f64
}

fn curve(gpus: u64, policy: BufferPolicy, label: &str) {
    println!("  {label}:");
    print!("    layers: ");
    let points: Vec<usize> = match gpus {
        1 => vec![2, 5, 10, 20, 30, 40, 50, 60],
        _ => vec![10, 50, 100, 150, 250, 350, 450, 550],
    };
    for &l in &points {
        print!("{l:>8}");
    }
    println!();
    print!("    GiB:    ");
    for &l in &points {
        let cfg = GcnConfig::new(602, &vec![512; l - 1], 41);
        let plan = MemoryPlan::new(N, M, &cfg, gpus, policy);
        print!("{:>8.1}", gib(plan.total()));
    }
    println!();
    let cap = max_layers(N, M, 602, 512, 41, gpus, policy, GIB30);
    println!("    max layers within 30 GiB: {cap}");
}

fn main() {
    println!("Fig 12: per-GPU memory on Reddit, hidden 512, varying layers");
    println!("\n(a) 1 GPU");
    curve(1, BufferPolicy::PerLayer3, "DGL (per-layer buffers)");
    curve(1, BufferPolicy::MgGcn, "MG-GCN (L + 3 shared buffers)");
    println!("\n(b) 8 GPUs");
    curve(8, BufferPolicy::CagnetFullGather, "CAGNET (per-layer + full gather)");
    curve(8, BufferPolicy::MgGcn, "MG-GCN (L + 3 shared buffers)");
    println!();
    println!("(paper: ~20 vs ~50 layers at 1 GPU; ~150 vs ~450 at 8 GPUs)");
}
