//! Ablation — §4.4's two algebraic tricks, isolated:
//!
//! 1. **Op-order selection**: run SpMM before GeMM when `d(l) < d(l+1)`,
//!    so the sparse kernel (and the broadcast!) see the narrower operand.
//!    Matters most when `d(0) ≪ hidden` (Products: 104 vs 512).
//! 2. **First-layer backward-SpMM skip**: when input-feature gradients are
//!    not needed, the backward SpMM at width `d(1)` disappears — one of
//!    only three SpMMs in a 2-layer model.
//!
//! Both are numerically validated elsewhere (`crates/core/tests`); this
//! harness quantifies the epoch-time effect per dataset.

use mggcn_bench::mggcn_epoch_with;
use mggcn_core::config::{GcnConfig, TrainOptions};
use mggcn_gpusim::MachineSpec;
use mggcn_graph::datasets::FIGURE_DATASETS;

fn epoch(
    card: &mggcn_graph::DatasetCard,
    cfg: &GcnConfig,
    gpus: usize,
    op_order: bool,
    skip: bool,
) -> Option<f64> {
    let mut opts = TrainOptions::full(MachineSpec::dgx_v100(), gpus);
    opts.op_order_opt = op_order;
    opts.skip_first_backward_spmm = skip;
    mggcn_epoch_with(card, cfg, opts).map(|r| r.sim_seconds)
}

fn main() {
    println!("Ablation: §4.4 op-order selection and first-layer backward-SpMM skip");
    println!("(DGX-V100, model A, epoch seconds; speedups vs neither optimization)\n");
    println!(
        "{:<10} {:>5} {:>10} {:>11} {:>11} {:>11}",
        "Dataset", "#GPU", "neither", "+op-order", "+skip", "both"
    );
    for card in FIGURE_DATASETS {
        let cfg = GcnConfig::model_a(card.feat_dim, card.classes);
        for gpus in [1usize, 8] {
            let base = epoch(&card, &cfg, gpus, false, false);
            let order = epoch(&card, &cfg, gpus, true, false);
            let skip = epoch(&card, &cfg, gpus, false, true);
            let both = epoch(&card, &cfg, gpus, true, true);
            match (base, order, skip, both) {
                (Some(b), Some(o), Some(s), Some(t)) => println!(
                    "{:<10} {:>5} {:>10.4} {:>9.2}x {:>9.2}x {:>9.2}x",
                    card.name,
                    gpus,
                    b,
                    b / o,
                    b / s,
                    b / t
                ),
                _ => println!("{:<10} {:>5}  Out of Memory", card.name, gpus),
            }
        }
    }
    println!();
    println!("(op-order pays off when d(0) < hidden — Arxiv 128, Products 104 — by");
    println!(" shrinking both the SpMM operand and the broadcast; the skip removes");
    println!(" one of the three SpMMs of a 2-layer epoch on every dataset)");
}
