//! Fig 5 — Runtime decomposition of operations in the forward and backward
//! pass (% of kernel time in Activation / Adam / GeMM / Loss-Layer / SpMM),
//! per dataset and GPU count, on DGX-V100 with model A (2 layers, h = 512).
//!
//! Paper's headline: SpMM takes 60–94% on the large graphs (Products,
//! Proteins, Reddit); GeMM dominates on the small ones (Cora, Arxiv);
//! Proteins is OOM below 4 GPUs.

use mggcn_bench::mggcn_epoch;
use mggcn_core::config::GcnConfig;
use mggcn_gpusim::{Category, MachineSpec};
use mggcn_graph::datasets::FIGURE_DATASETS;

fn main() {
    println!("Fig 5: runtime breakdown (%), DGX-V100, 2-layer GCN h=512");
    let cats =
        [Category::Activation, Category::Adam, Category::GeMM, Category::LossLayer, Category::SpMM];
    print!("{:<10} {:>5}", "Dataset", "#GPU");
    for c in cats {
        print!(" {:>11}", c.name());
    }
    println!();
    for card in FIGURE_DATASETS {
        let cfg = GcnConfig::model_a(card.feat_dim, card.classes);
        for gpus in [1usize, 2, 4, 8] {
            print!("{:<10} {:>5}", card.name, gpus);
            match mggcn_epoch(&card, &cfg, MachineSpec::dgx_v100(), gpus) {
                Some(report) => {
                    let pct = report.breakdown(true);
                    for c in cats {
                        let v = pct.iter().find(|(k, _)| *k == c).map(|(_, p)| *p).unwrap_or(0.0);
                        print!(" {v:>10.1}%");
                    }
                    println!();
                }
                None => println!("  Out of Memory"),
            }
        }
    }
}
