//! Criterion micro-benchmarks for the kernel substrate: SpMM, GeMM,
//! collectives, the BTER generator, permutation application, and the
//! discrete-event engine itself.
//!
//! These wall-clock numbers are about *this machine's CPU kernels*, not the
//! paper's GPUs — they guard against performance regressions in the
//! substrate the simulator's real-compute mode runs on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mggcn_dense::{gemm, Accumulate, Dense};
use mggcn_graph::generators::bter::{self, ClusteringProfile};
use mggcn_graph::generators::{chung_lu, degree};
use mggcn_graph::random_permutation;
use mggcn_sparse::spmm;
use std::hint::black_box;

fn bench_spmm(c: &mut Criterion) {
    let mut group = c.benchmark_group("spmm");
    group.sample_size(10).measurement_time(std::time::Duration::from_secs(2));
    for &(n, avg_deg, d) in &[(10_000usize, 16u32, 64usize), (50_000, 8, 32)] {
        let degrees = vec![avg_deg; n];
        let a = chung_lu::generate(&degrees, 42);
        let b = Dense::from_fn(n, d, |r, cc| ((r * d + cc) as f32).sin());
        let mut out = Dense::zeros(n, d);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_k{avg_deg}_d{d}")),
            &(),
            |bench, ()| {
                bench.iter(|| {
                    spmm(black_box(&a), black_box(&b), &mut out, Accumulate::Overwrite);
                })
            },
        );
    }
    group.finish();
}

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    group.sample_size(10).measurement_time(std::time::Duration::from_secs(2));
    for &(m, k, n) in &[(4096usize, 256usize, 128usize), (16_384, 128, 64)] {
        let a = Dense::from_fn(m, k, |r, cc| ((r + cc) as f32).cos());
        let b = Dense::from_fn(k, n, |r, cc| ((r * 2 + cc) as f32).sin());
        let mut out = Dense::zeros(m, n);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{m}x{k}x{n}")),
            &(),
            |bench, ()| {
                bench.iter(|| {
                    gemm(black_box(&a), black_box(&b), &mut out, Accumulate::Overwrite);
                })
            },
        );
    }
    group.finish();
}

fn bench_collectives(c: &mut Criterion) {
    let mut group = c.benchmark_group("collectives");
    group.sample_size(10).measurement_time(std::time::Duration::from_secs(2));
    let len = 1 << 20;
    let src: Vec<f32> = (0..len).map(|i| i as f32).collect();
    group.bench_function("broadcast_4x1M", |bench| {
        let mut d1 = vec![0.0f32; len];
        let mut d2 = vec![0.0f32; len];
        let mut d3 = vec![0.0f32; len];
        let mut d4 = vec![0.0f32; len];
        bench.iter(|| {
            mggcn_comm::broadcast(black_box(&src), &mut [&mut d1, &mut d2, &mut d3, &mut d4]);
        })
    });
    group.bench_function("all_reduce_4x1M", |bench| {
        let mut b1 = src.clone();
        let mut b2 = src.clone();
        let mut b3 = src.clone();
        let mut b4 = src.clone();
        bench.iter(|| {
            mggcn_comm::all_reduce_sum(&mut [&mut b1, &mut b2, &mut b3, &mut b4]);
        })
    });
    group.finish();
}

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators");
    group.sample_size(10).measurement_time(std::time::Duration::from_secs(3));
    let model = degree::DegreeModel::power_law(8.0, 2.4, 20_000);
    let degrees = degree::sample_degrees(&model, 20_000, 7);
    group.bench_function("chung_lu_20k", |bench| {
        bench.iter(|| chung_lu::generate(black_box(&degrees), 1))
    });
    group.bench_function("bter_20k", |bench| {
        bench.iter(|| bter::generate(black_box(&degrees), &ClusteringProfile::arxiv_like(), 1))
    });
    group.finish();
}

fn bench_permutation(c: &mut Criterion) {
    let mut group = c.benchmark_group("permutation");
    group.sample_size(10).measurement_time(std::time::Duration::from_secs(2));
    let degrees = vec![12u32; 30_000];
    let a = chung_lu::generate(&degrees, 3);
    let perm = random_permutation(30_000, 9);
    group.bench_function("permute_symmetric_30k", |bench| {
        bench.iter(|| black_box(&a).permute_symmetric(black_box(&perm)))
    });
    group.finish();
}

fn bench_engine(c: &mut Criterion) {
    use mggcn_gpusim::engine::OpDesc;
    use mggcn_gpusim::{Category, MachineSpec, Schedule, Work};
    let mut group = c.benchmark_group("engine");
    group.sample_size(10).measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("schedule_1k_ops", |bench| {
        bench.iter(|| {
            let mut s: Schedule<()> = Schedule::new(MachineSpec::dgx_a100());
            let mut prev = None;
            for i in 0..1000usize {
                let gpu = i % 8;
                let waits: Vec<usize> = prev.into_iter().collect();
                prev = Some(s.launch(
                    gpu,
                    0,
                    Work::Compute { flops: 1.0e9, bytes: 1.0e6 },
                    OpDesc::new(Category::Other, "op"),
                    &waits,
                    None,
                ));
            }
            s.run(&())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_spmm,
    bench_gemm,
    bench_collectives,
    bench_generators,
    bench_permutation,
    bench_engine
);
criterion_main!(benches);
