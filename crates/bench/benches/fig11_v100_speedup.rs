//! Fig 11 — Speedup w.r.t. single-GPU DGL on DGX-V100 (model A), for
//! CAGNET and MG-GCN at 1–8 GPUs.
//!
//! Paper's headline single-GPU ratios: 2.72× Reddit, 1.42× Products,
//! 1.76× Arxiv, 3.1× Cora; and at 8 GPUs MG-GCN beats CAGNET by 2.66×
//! (Reddit), 8.6× (Products), 2.35× (Arxiv).

use mggcn_bench::{cagnet_epoch, dgl_epoch, mggcn_epoch};
use mggcn_core::config::GcnConfig;
use mggcn_gpusim::MachineSpec;
use mggcn_graph::datasets::{ARXIV, CORA, PRODUCTS, REDDIT};

fn main() {
    println!("Fig 11: speedup w.r.t. DGL (1 GPU), DGX-V100, model A");
    println!(
        "{:<10} {:>5} {:>10} {:>10} {:>14}",
        "Dataset", "#GPU", "CAGNET", "MG-GCN", "MG/CAGNET"
    );
    let m = MachineSpec::dgx_v100;
    // Proteins is excluded: DGL cannot run it, so there is no reference.
    for card in [CORA, ARXIV, PRODUCTS, REDDIT] {
        let cfg = GcnConfig::model_a(card.feat_dim, card.classes);
        let dgl = dgl_epoch(&card, &cfg, m()).expect("DGL reference fits");
        for gpus in [1usize, 2, 4, 8] {
            let cag = cagnet_epoch(&card, &cfg, m(), gpus);
            let mg = mggcn_epoch(&card, &cfg, m(), gpus).map(|r| r.sim_seconds);
            let cag_s = cag.map(|t| format!("{:.2}x", dgl / t)).unwrap_or("OOM".into());
            let mg_s = mg.map(|t| format!("{:.2}x", dgl / t)).unwrap_or("OOM".into());
            let ratio = match (cag, mg) {
                (Some(c), Some(g)) => format!("{:.2}x", c / g),
                _ => "-".into(),
            };
            println!("{:<10} {:>5} {:>10} {:>10} {:>14}", card.name, gpus, cag_s, mg_s, ratio);
        }
    }
}
