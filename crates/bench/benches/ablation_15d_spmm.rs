//! Ablation — the §5.1 decision, run end-to-end in the engine.
//!
//! `analysis_1d_vs_15d` checks the paper's closed-form link arithmetic;
//! this harness *executes* both staged-SpMM schedules (broadcast rounds,
//! compute, cross-group reduce) in the discrete-event engine, including
//! overlap and bandwidth contention, and reports which strategy wins on
//! which machine. The paper's conclusion — 1D on DGX-1, near-tie on
//! DGX-A100 where 1.5D's comm edge is bought with 2× memory — should
//! fall out.

use mggcn_bench::{staged_spmm_15d_timeline, staged_spmm_timeline};
use mggcn_gpusim::MachineSpec;
use mggcn_graph::datasets::{PRODUCTS, REDDIT};
use mggcn_graph::tilestats::{TileStats, VertexOrdering};

fn main() {
    println!("Ablation: 1D vs 1.5D staged SpMM, executed in the engine (8 GPUs, d = 512)");
    println!(
        "{:<10} {:<10} {:>12} {:>12} {:>10} {:>8}",
        "Machine", "Dataset", "1D (ms)", "1.5D (ms)", "ratio", "winner"
    );
    for machine in [MachineSpec::dgx_v100(), MachineSpec::dgx_a100()] {
        for card in [REDDIT, PRODUCTS] {
            let stats = TileStats::model(&card, 8, VertexOrdering::Permuted);
            let (_, t_1d) = staged_spmm_timeline(&stats, 512, machine.clone(), true);
            let (_, t_15d) = staged_spmm_15d_timeline(&stats, 512, machine.clone(), true);
            println!(
                "{:<10} {:<10} {:>12.2} {:>12.2} {:>9.2}x {:>8}",
                machine.name,
                card.name,
                t_1d * 1e3,
                t_15d * 1e3,
                t_15d / t_1d,
                if t_1d <= t_15d { "1D" } else { "1.5D" }
            );
        }
    }
    println!();
    println!("memory: the 1.5D replica doubles the partitioned feature/buffer state");
    println!("per GPU — on memory-bound GNN training that decides it (paper §5.1).");
}
