//! Fig 13 — Epoch runtime (s) comparison on DGX-A100: DGL vs MG-GCN,
//! model A (2 layers, h = 512), 1–8 GPUs.
//!
//! Paper's headline: MG-GCN wins on every dataset at one GPU (1.5–2.2×)
//! and keeps scaling to 8; DGL is OOM on Proteins.

use mggcn_bench::{dgl_epoch, fmt_time, mggcn_epoch};
use mggcn_core::config::GcnConfig;
use mggcn_gpusim::MachineSpec;
use mggcn_graph::datasets::FIGURE_DATASETS;

fn main() {
    println!("Fig 13: epoch runtime (s), DGX-A100, model A (2 layers, h=512)");
    println!("{:<10} {:>5} {:>10} {:>10}", "Dataset", "#GPU", "DGL", "MG-GCN");
    let m = MachineSpec::dgx_a100;
    for card in FIGURE_DATASETS {
        let cfg = GcnConfig::model_a(card.feat_dim, card.classes);
        for gpus in [1usize, 2, 4, 8] {
            let dgl = if gpus == 1 { dgl_epoch(&card, &cfg, m()) } else { None };
            let mg = mggcn_epoch(&card, &cfg, m(), gpus).map(|r| r.sim_seconds);
            println!(
                "{:<10} {:>5} {:>10} {:>10}",
                card.name,
                gpus,
                if gpus == 1 { fmt_time(dgl) } else { "-".into() },
                fmt_time(mg)
            );
        }
    }
}
