//! Fig 14 — Speedup w.r.t. single-GPU DGL on DGX-A100, model A, MG-GCN at
//! 1–8 GPUs.
//!
//! Paper's headline: single-GPU ratios of 2.2× (Cora), 1.8× (Arxiv),
//! 1.5× (Products), 1.5× (Reddit); 8.5× multi-GPU scaling on Products and
//! 8.3× on Reddit at 8 GPUs.

use mggcn_bench::{dgl_epoch, mggcn_epoch};
use mggcn_core::config::GcnConfig;
use mggcn_gpusim::MachineSpec;
use mggcn_graph::datasets::{ARXIV, CORA, PRODUCTS, REDDIT};

fn main() {
    println!("Fig 14: speedup w.r.t. DGL (1 GPU), DGX-A100, model A");
    println!("{:<10} {:>5} {:>12} {:>18}", "Dataset", "#GPU", "MG-GCN/DGL", "scaling vs 1 GPU");
    let m = MachineSpec::dgx_a100;
    for card in [ARXIV, CORA, PRODUCTS, REDDIT] {
        let cfg = GcnConfig::model_a(card.feat_dim, card.classes);
        let dgl = dgl_epoch(&card, &cfg, m()).expect("DGL reference fits");
        let mg1 = mggcn_epoch(&card, &cfg, m(), 1).map(|r| r.sim_seconds).expect("1 GPU fits");
        for gpus in [1usize, 2, 4, 8] {
            match mggcn_epoch(&card, &cfg, m(), gpus) {
                Some(r) => println!(
                    "{:<10} {:>5} {:>11.2}x {:>17.2}x",
                    card.name,
                    gpus,
                    dgl / r.sim_seconds,
                    mg1 / r.sim_seconds
                ),
                None => println!("{:<10} {:>5} {:>12}", card.name, gpus, "OOM"),
            }
        }
    }
}
