//! Extension (§7 future work) — multi-node scaling study.
//!
//! The paper's motivation (§1) cites CAGNET's finding that "none of the
//! proposed algorithms can achieve speedup beyond a single node (4 GPUs),
//! primarily due to the restricted bandwidth of the available
//! interconnect". Here we run MG-GCN's own schedule on a modeled multi-node
//! A100 cluster: as soon as the broadcast group crosses a node, every
//! stage is throttled to the NIC, and the speedup curve flattens or
//! reverses exactly as §1 predicts. A faster interconnect sweep shows what
//! it would take to keep scaling — the quantitative version of the §7
//! outlook.

use mggcn_bench::mggcn_epoch_with;
use mggcn_core::config::{GcnConfig, TrainOptions};
use mggcn_gpusim::MachineSpec;
use mggcn_graph::datasets::{PRODUCTS, REDDIT};

fn epoch(machine: MachineSpec, gpus: usize, card: &mggcn_graph::DatasetCard) -> Option<f64> {
    let cfg = GcnConfig::model_a(card.feat_dim, card.classes);
    let opts = TrainOptions::full(machine, gpus);
    mggcn_epoch_with(card, &cfg, opts).map(|r| r.sim_seconds)
}

fn main() {
    println!("Extension: MG-GCN on a multi-node A100 cluster (model A)");
    println!("\nHDR InfiniBand NIC (25 GB/s per node):");
    println!("{:<10} {:>6} {:>10} {:>10}", "Dataset", "#GPU", "epoch (s)", "speedup");
    let cluster = || MachineSpec::a100_cluster(4, 25.0e9);
    for card in [REDDIT, PRODUCTS] {
        let t1 = epoch(cluster(), 1, &card).expect("fits");
        for gpus in [1usize, 4, 8, 16, 32] {
            match epoch(cluster(), gpus, &card) {
                Some(t) => println!(
                    "{:<10} {:>6} {:>10.4} {:>9.2}x{}",
                    card.name,
                    gpus,
                    t,
                    t1 / t,
                    if gpus > 8 { "   <- crosses nodes" } else { "" }
                ),
                None => println!("{:<10} {:>6} {:>10}", card.name, gpus, "OOM"),
            }
        }
    }

    println!("\nNIC bandwidth sweep at 16 GPUs (2 nodes), Reddit:");
    println!("{:>14} {:>12} {:>22}", "NIC (GB/s)", "epoch (s)", "vs 8 GPUs (1 node)");
    let t8 = epoch(MachineSpec::a100_cluster(2, 25.0e9), 8, &REDDIT).expect("fits");
    for nic_gbs in [12.5, 25.0, 50.0, 100.0, 200.0, 400.0] {
        let m = MachineSpec::a100_cluster(2, nic_gbs * 1.0e9);
        let t16 = epoch(m, 16, &REDDIT).expect("fits");
        println!("{:>14} {:>12.4} {:>21.2}x", nic_gbs, t16, t8 / t16);
    }
    println!();
    println!("(values < 1.0x mean adding the second node *hurts* — the CAGNET");
    println!(" cliff; scaling resumes once the NIC approaches NVLink bandwidth)");
}
