//! §5.1 — Choice of the partitioning strategy: 1D vs 1.5D communication
//! time on both machines.
//!
//! Paper's arithmetic: on DGX-1 the 1.5D algorithm is 1.5× slower than 1D
//! (its cross-quad reduction sees only 2 NVLinks); on DGX-A100 it is 4/3
//! faster but needs 2× the memory — hence MG-GCN implements 1D only.

use mggcn_baselines::cagnet::t_15d_epoch_comm;
use mggcn_comm::analysis::analyze;
use mggcn_core::config::GcnConfig;
use mggcn_gpusim::MachineSpec;
use mggcn_graph::datasets::{PRODUCTS, REDDIT};

fn main() {
    println!("Section 5.1 analysis: 1D vs 1.5D communication");
    println!("\nPer-SpMM feature movement (n x d fp32):");
    println!(
        "{:<10} {:<10} {:>10} {:>10} {:>12} {:>10}",
        "Machine", "Dataset", "t_1D (ms)", "t_1.5D", "1.5D/1D", "mem x"
    );
    for machine in [MachineSpec::dgx_v100(), MachineSpec::dgx_a100()] {
        for (card, d) in [(REDDIT, 512usize), (PRODUCTS, 512)] {
            let a = analyze(&machine, card.n as f64 * d as f64 * 4.0);
            println!(
                "{:<10} {:<10} {:>10.2} {:>10.2} {:>11.2}x {:>10.1}",
                machine.name,
                card.name,
                a.t_1d * 1e3,
                a.t_15d * 1e3,
                a.slowdown_15d(),
                a.mem_factor_15d
            );
        }
    }

    println!("\nWhole-epoch communication (model A, with first-layer skip):");
    println!(
        "{:<10} {:<10} {:>12} {:>12} {:>10}",
        "Machine", "Dataset", "1D (ms)", "1.5D (ms)", "winner"
    );
    for machine in [MachineSpec::dgx_v100(), MachineSpec::dgx_a100()] {
        for card in [REDDIT, PRODUCTS] {
            let cfg = GcnConfig::model_a(card.feat_dim, card.classes);
            let (t1, t15) = t_15d_epoch_comm(&machine, card.n, &cfg, true);
            println!(
                "{:<10} {:<10} {:>12.2} {:>12.2} {:>10}",
                machine.name,
                card.name,
                t1 * 1e3,
                t15 * 1e3,
                if t1 <= t15 { "1D" } else { "1.5D" }
            );
        }
    }
    println!();
    println!("(paper: 1D wins by 3/2 on DGX-1; 1.5D wins by 4/3 on DGX-A100 but at 2x");
    println!(" memory, so MG-GCN ships 1D only)");
}
