//! Fig 10 — Baseline epoch runtime (seconds) on DGX-V100: CAGNET vs DGL vs
//! MG-GCN, model A (2 layers, h = 512), 1–8 GPUs.
//!
//! Paper's headline: MG-GCN wins everywhere; DGL is single-GPU only; on
//! Proteins CAGNET and DGL are OOM, MG-GCN is OOM at 1–2 GPUs and runs at 4.

use mggcn_bench::{cagnet_epoch, dgl_epoch, fmt_time, mggcn_epoch};
use mggcn_core::config::GcnConfig;
use mggcn_gpusim::MachineSpec;
use mggcn_graph::datasets::FIGURE_DATASETS;

fn main() {
    println!("Fig 10: epoch runtime (s), DGX-V100, model A (2 layers, h=512)");
    println!("{:<10} {:>5} {:>10} {:>10} {:>10}", "Dataset", "#GPU", "CAGNET", "DGL", "MG-GCN");
    let m = MachineSpec::dgx_v100;
    for card in FIGURE_DATASETS {
        let cfg = GcnConfig::model_a(card.feat_dim, card.classes);
        for gpus in [1usize, 2, 4, 8] {
            let cag = cagnet_epoch(&card, &cfg, m(), gpus);
            let dgl = if gpus == 1 { dgl_epoch(&card, &cfg, m()) } else { None };
            let mg = mggcn_epoch(&card, &cfg, m(), gpus).map(|r| r.sim_seconds);
            println!(
                "{:<10} {:>5} {:>10} {:>10} {:>10}",
                card.name,
                gpus,
                fmt_time(cag),
                if gpus == 1 { fmt_time(dgl) } else { "-".into() },
                fmt_time(mg)
            );
        }
    }
    println!();
    println!("(DGL is single-GPU only; '-' marks configurations it does not support)");
}
