//! Extension — the §6 convergence claim, end to end.
//!
//! The paper trains Reddit (2 layers, h = 16) to 95.95% test accuracy "in
//! the transductive setting after 466 epochs with eight V100s in only 1
//! minute, 20 seconds of which is spent on preprocessing". Reddit itself
//! is gated, so we run the same protocol on a ground-truth community
//! replica: train with early stopping, report epochs-to-accuracy and the
//! *simulated* training time on eight V100s, and show the MLP foil
//! plateauing below the GCN.

use mggcn_baselines::mlp::MlpTrainer;
use mggcn_core::config::{GcnConfig, TrainOptions};
use mggcn_core::fit::{fit, FitOptions};
use mggcn_core::problem::Problem;
use mggcn_core::trainer::Trainer;
use mggcn_gpusim::MachineSpec;
use mggcn_graph::generators::sbm::{self, SbmConfig};

fn main() {
    println!("Extension: convergence protocol (the paper's §6 accuracy claim)");
    let mut sbm_cfg = SbmConfig::community_benchmark(6_000, 8);
    sbm_cfg.noise = 2.0;
    let graph = sbm::generate(&sbm_cfg, 2026);
    println!(
        "replica: n = {}, m = {}, {} classes, noisy features\n",
        graph.n(),
        graph.adj.nnz(),
        graph.classes
    );

    let cfg = GcnConfig::new(graph.features.cols(), &[16], graph.classes);
    let opts = TrainOptions::full(MachineSpec::dgx_v100(), 8);
    let problem = Problem::from_graph(&graph, &cfg, &opts);
    let mut trainer = Trainer::new(problem, cfg.clone(), opts).expect("fits");
    let result = fit(
        &mut trainer,
        &FitOptions { target_accuracy: 0.97, max_epochs: 500, patience: 80, ..Default::default() },
    )
    .expect("fit");
    println!("MG-GCN (8 virtual V100s, 2 layers h=16):");
    println!("  stopped: {:?} after {} epochs", result.stopped, result.history.len());
    println!(
        "  best test accuracy: {:.2}% at epoch {}",
        result.best_accuracy * 100.0,
        result.best_epoch
    );
    for level in [0.80, 0.90, 0.95] {
        match result.epochs_to(level) {
            Some(e) => {
                let t: f64 = result.history[..=e].iter().map(|r| r.sim_seconds).sum();
                println!(
                    "  epochs to {:.0}%: {:>4}   (simulated {:.2} s of training)",
                    level * 100.0,
                    e,
                    t
                );
            }
            None => println!("  epochs to {:.0}%: not reached", level * 100.0),
        }
    }
    println!("  total simulated training time: {:.2} s", result.sim_time);

    let mut mlp = MlpTrainer::new(&graph, &cfg);
    let mut best_mlp = 0.0f64;
    for _ in 0..result.history.len().max(100) {
        best_mlp = best_mlp.max(mlp.train_epoch().test_acc);
    }
    println!("\nMLP foil (same widths, no graph): best test accuracy {:.2}%", best_mlp * 100.0);
    println!(
        "\n(paper: 95.95% in 466 epochs, ~1 simulated minute on 8 V100s; the replica's\n community structure is easier, so convergence here is faster — the protocol,\n time accounting and GCN-vs-MLP gap are the reproduced quantities)"
    );
}
