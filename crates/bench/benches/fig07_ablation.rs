//! Fig 7 — Effect of permutation and communication/computation overlap on
//! epoch runtime, DGX-V100, normalized to the original ordering
//! (non-overlapped).
//!
//! Bars per dataset and GPU count: `P-Perm` (permutation only) and
//! `P-Perm+Ovlp` (permutation + overlap). Paper's headline: ~1.5× from
//! permutation and an extra ~1.15× from overlap on Products/Reddit at 8
//! GPUs; small or negative gains at 1–2 GPUs.

use mggcn_bench::mggcn_epoch_with;
use mggcn_core::config::{GcnConfig, TrainOptions};
use mggcn_gpusim::MachineSpec;
use mggcn_graph::datasets::FIGURE_DATASETS;

fn epoch(
    card: &mggcn_graph::DatasetCard,
    cfg: &GcnConfig,
    gpus: usize,
    permute: bool,
    overlap: bool,
) -> Option<f64> {
    let mut opts = TrainOptions::full(MachineSpec::dgx_v100(), gpus);
    opts.permute = permute;
    opts.overlap = overlap;
    mggcn_epoch_with(card, cfg, opts).map(|r| r.sim_seconds)
}

fn main() {
    println!("Fig 7: speedup w.r.t. original ordering (no overlap), DGX-V100, model A");
    println!("{:<10} {:>5} {:>12} {:>15}", "Dataset", "#GPU", "Perm", "Perm+Ovlp");
    for card in FIGURE_DATASETS {
        let cfg = GcnConfig::model_a(card.feat_dim, card.classes);
        for gpus in [1usize, 2, 4, 8] {
            let base = epoch(&card, &cfg, gpus, false, false);
            let perm = epoch(&card, &cfg, gpus, true, false);
            let both = epoch(&card, &cfg, gpus, true, true);
            match (base, perm, both) {
                (Some(b), Some(p), Some(o)) => {
                    // 1-GPU runs have no broadcast to overlap; report the
                    // permutation-only bar as the paper does ("1-Perm").
                    if gpus == 1 {
                        println!("{:<10} {:>5} {:>11.2}x {:>15}", card.name, gpus, b / p, "-");
                    } else {
                        println!("{:<10} {:>5} {:>11.2}x {:>14.2}x", card.name, gpus, b / p, b / o);
                    }
                }
                _ => println!("{:<10} {:>5}  Out of Memory", card.name, gpus),
            }
        }
    }
}
