//! Fig 8 — Timeline of the staged SpMM on Products (4 GPUs, permuted
//! ordering) with communication/computation overlap.
//!
//! Paper's headline: overlapping drops the SpMM from ~38 ms to ~30 ms even
//! though the overlapped kernels individually slow down (NVLink ingest
//! steals memory bandwidth, §6.3).

use mggcn_bench::staged_spmm_timeline;
use mggcn_gpusim::MachineSpec;
use mggcn_graph::datasets::PRODUCTS;
use mggcn_graph::tilestats::{TileStats, VertexOrdering};

fn main() {
    println!("Fig 8: staged SpMM with comm/comp overlap, Products, 4 GPUs, DGX-V100, d=512");
    let stats = TileStats::model(&PRODUCTS, 4, VertexOrdering::Permuted);
    let m = MachineSpec::dgx_v100();

    let (tl_serial, t_serial) = staged_spmm_timeline(&stats, 512, m.clone(), false);
    println!("\nWithout overlap ({:.1} ms): single stream per GPU", t_serial * 1e3);
    println!("{}", tl_serial.ascii_gantt(72));

    let (tl_ovlp, t_ovlp) = staged_spmm_timeline(&stats, 512, m, true);
    println!("With overlap ({:.1} ms): s0 = compute (digits: stage), s1 = comm", t_ovlp * 1e3);
    println!("{}", tl_ovlp.ascii_gantt(72));

    println!(
        "serial {:.1} ms -> overlapped {:.1} ms ({:.2}x; paper: 38 ms -> 30 ms, 1.27x)",
        t_serial * 1e3,
        t_ovlp * 1e3,
        t_serial / t_ovlp
    );
}
