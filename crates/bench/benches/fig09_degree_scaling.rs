//! Fig 9 — Speedup w.r.t. the 1-GPU runtime as the average degree scales
//! 1×…128× (BTER-scaled Arxiv, h = 512, 40 classes), on DGX-V100.
//!
//! Paper's headline: at low density communication dominates and multi-GPU
//! speedup is sublinear; as density grows compute dominates and the runs
//! become super-linear (>2× at 2 GPUs past 32×, >8× at 8 GPUs past 64×)
//! thanks to the cache-residency effect of smaller per-GPU tiles.

use mggcn_bench::mggcn_epoch;
use mggcn_core::config::GcnConfig;
use mggcn_gpusim::MachineSpec;
use mggcn_graph::datasets::scaled_arxiv;

fn main() {
    println!("Fig 9: speedup w.r.t. MG-GCN 1-GPU runtime, BTER-scaled Arxiv, DGX-V100");
    println!("{:<6} {:>10} {:>8} {:>8} {:>8} {:>8}", "Scale", "t1 (s)", "1", "2", "4", "8");
    for e in 0..8u32 {
        let card = scaled_arxiv(1 << e);
        let cfg = GcnConfig::new(card.feat_dim, &[512], card.classes);
        let t1 = mggcn_epoch(&card, &cfg, MachineSpec::dgx_v100(), 1)
            .map(|r| r.sim_seconds)
            .expect("1-GPU run fits");
        print!("{:<6} {:>10.4}", card.name, t1);
        for gpus in [1usize, 2, 4, 8] {
            match mggcn_epoch(&card, &cfg, MachineSpec::dgx_v100(), gpus) {
                Some(r) => print!(" {:>7.2}x", t1 / r.sim_seconds),
                None => print!(" {:>8}", "OOM"),
            }
        }
        println!();
    }
    println!();
    println!("(super-linear entries — speedup above the GPU count — should appear");
    println!(" at 2 and 4 GPUs from ~32x density and at 8 GPUs from ~64x, per the paper)");
}
