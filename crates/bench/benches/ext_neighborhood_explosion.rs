//! Extension — the §1 motivation, quantified: neighborhood explosion in
//! mini-batch training.
//!
//! "Starting from the mini-batch nodes, it is possible to reach almost
//! every single node in the graph in just a few hops … which increases the
//! work performed during a single epoch exponentially." We measure it on
//! materialized dataset replicas: the exact k-hop reach of a small batch,
//! and the per-epoch touched-vertex multiple of a fanout-capped sampler
//! versus full-batch training (which touches each vertex exactly once per
//! epoch).

use mggcn_baselines::minibatch::{MiniBatchConfig, MiniBatchTrainer};
use mggcn_core::config::GcnConfig;
use mggcn_graph::datasets;
use mggcn_graph::sampling::khop_neighborhood;

fn main() {
    println!("Extension: neighborhood explosion (materialized replicas)");
    println!("\nExact k-hop reach of a 32-vertex batch (% of all vertices):");
    println!(
        "{:<10} {:>7} {:>8} {:>8} {:>8} {:>8}",
        "Replica", "n", "1 hop", "2 hops", "3 hops", "4 hops"
    );
    for (card, scale) in
        [(datasets::ARXIV, 0.03), (datasets::PRODUCTS, 0.002), (datasets::REDDIT, 0.02)]
    {
        let g = card.materialize(scale, 99);
        let batch: Vec<u32> = (0..32.min(g.n() as u32)).collect();
        print!("{:<10} {:>7}", card.name, g.n());
        for hops in 1..=4 {
            let reach = khop_neighborhood(&g.adj, &batch, hops).len();
            print!(" {:>7.1}%", 100.0 * reach as f64 / g.n() as f64);
        }
        println!();
    }

    println!("\nPer-epoch work of a fanout-10 sampler (2-layer model), vs full batch = 1.0x:");
    println!(
        "{:<10} {:>7} {:>10} {:>14} {:>12}",
        "Replica", "n", "batches", "touched", "work ratio"
    );
    for (card, scale) in
        [(datasets::ARXIV, 0.03), (datasets::PRODUCTS, 0.002), (datasets::REDDIT, 0.02)]
    {
        let g = card.materialize(scale, 99);
        let cfg = GcnConfig::new(g.features.cols(), &[16], g.classes);
        let mb = MiniBatchConfig { batch_size: 64, fanouts: vec![10; cfg.layers()], seed: 7 };
        let mut t = MiniBatchTrainer::new(&g, &cfg, mb);
        let report = t.train_epoch();
        println!(
            "{:<10} {:>7} {:>10} {:>14} {:>11.1}x",
            card.name,
            g.n(),
            report.batches,
            report.work_touched,
            report.work_touched as f64 / g.n() as f64
        );
    }
    println!();
    println!("(ratios well above 1.0x are the epoch-work blow-up that makes the");
    println!(" paper choose full-batch training; denser replicas explode faster)");
}
