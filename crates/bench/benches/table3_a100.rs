//! Table 3 — MG-GCN epoch times (seconds) on DGX-A100 with the DistGNN
//! comparison models: Reddit (2 layers, h = 16), Products/Proteins
//! (3 layers, h = 256), Papers (3 layers, h = 208).
//!
//! Paper's values: Reddit 0.033/0.017/0.012/0.012; Papers —/—/—/2.89;
//! Products 0.355/0.202/0.110/0.067; Proteins 4.221/2.272/1.191/0.641.
//! The §6.6 punchline divides these into DistGNN's best published numbers:
//! 40× (Reddit), 12.6× (Papers), 12.4× (Products), 1.77× (Proteins).

use mggcn_baselines::distgnn::best_published;
use mggcn_bench::{fmt_time, mggcn_epoch};
use mggcn_core::config::GcnConfig;
use mggcn_gpusim::MachineSpec;
use mggcn_graph::datasets::{PAPERS, PRODUCTS, PROTEINS, REDDIT};

fn main() {
    println!("Table 3: MG-GCN epoch times (s) on DGX-A100");
    println!(
        "{:<10} {:>8} {:>8} {:>8} {:>8} {:>22}",
        "Dataset", "1", "2", "4", "8", "vs DistGNN best @8"
    );
    let rows = [
        ("Reddit", REDDIT, GcnConfig::model_b(REDDIT.feat_dim, REDDIT.classes)),
        ("Papers", PAPERS, GcnConfig::model_d(PAPERS.feat_dim, PAPERS.classes)),
        ("Products", PRODUCTS, GcnConfig::model_c(PRODUCTS.feat_dim, PRODUCTS.classes)),
        ("Proteins", PROTEINS, GcnConfig::model_c(PROTEINS.feat_dim, PROTEINS.classes)),
    ];
    for (name, card, cfg) in rows {
        let mut times = Vec::new();
        for gpus in [1usize, 2, 4, 8] {
            times.push(
                mggcn_epoch(&card, &cfg, MachineSpec::dgx_a100(), gpus).map(|r| r.sim_seconds),
            );
        }
        let vs = match (best_published(name), times[3]) {
            (Some((sockets, t_dist)), Some(t_mg)) => {
                format!("{:.1}x ({} sockets)", t_dist / t_mg, sockets)
            }
            _ => "-".to_string(),
        };
        println!(
            "{:<10} {:>8} {:>8} {:>8} {:>8} {:>22}",
            name,
            fmt_time(times[0]),
            fmt_time(times[1]),
            fmt_time(times[2]),
            fmt_time(times[3]),
            vs
        );
    }
    println!();
    println!("(dashes in the paper are OOM; paper ratios vs DistGNN best: 40x Reddit,");
    println!(" 12.6x Papers, 12.4x Products, 1.77x Proteins)");
}
