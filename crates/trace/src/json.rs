//! A minimal JSON parser and writer, just enough to validate and emit the
//! workspace's own artifacts (Chrome traces, `BENCH_trace.json`,
//! `serve-bench`/`BENCH_cluster.json` reports) without a serde dependency.
//! The parser accepts standard JSON; numbers are f64. The [`JsonWriter`]
//! builder is the shared emission path: every field goes through one
//! escaping/formatting routine, so anything it produces parses back with
//! [`parse`] — asserted by the round-trip tests below.

/// A parsed JSON value. Object keys keep document order.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object member lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Builder for one JSON object, the workspace's shared writer: keyed
/// fields are appended in call order, strings are escaped, and non-finite
/// floats become `null` (never bare `NaN`, which is not JSON). Nested
/// objects/arrays are composed by passing an inner writer's output to
/// [`JsonWriter::raw`] / [`JsonWriter::arr`].
#[derive(Clone, Debug, Default)]
pub struct JsonWriter {
    body: String,
}

impl JsonWriter {
    pub fn new() -> Self {
        Self::default()
    }

    fn key(&mut self, key: &str) -> &mut String {
        if !self.body.is_empty() {
            self.body.push(',');
        }
        self.body.push('"');
        self.body.push_str(&escape(key));
        self.body.push_str("\":");
        &mut self.body
    }

    /// An escaped string field.
    pub fn str(mut self, key: &str, v: &str) -> Self {
        let escaped = escape(v);
        let out = self.key(key);
        out.push('"');
        out.push_str(&escaped);
        out.push('"');
        self
    }

    pub fn u64(mut self, key: &str, v: u64) -> Self {
        use std::fmt::Write as _;
        let _ = write!(self.key(key), "{v}");
        self
    }

    pub fn usize(self, key: &str, v: usize) -> Self {
        self.u64(key, v as u64)
    }

    pub fn bool(mut self, key: &str, v: bool) -> Self {
        use std::fmt::Write as _;
        let _ = write!(self.key(key), "{v}");
        self
    }

    /// A float with fixed decimal places; non-finite values emit `null`.
    pub fn f64(mut self, key: &str, v: f64, decimals: usize) -> Self {
        use std::fmt::Write as _;
        let out = self.key(key);
        if v.is_finite() {
            let _ = write!(out, "{v:.decimals$}");
        } else {
            out.push_str("null");
        }
        self
    }

    /// A pre-rendered JSON value (nested object, array, number).
    pub fn raw(mut self, key: &str, v: &str) -> Self {
        self.key(key).push_str(v);
        self
    }

    /// An array of pre-rendered JSON values.
    pub fn arr<S: AsRef<str>>(mut self, key: &str, items: &[S]) -> Self {
        let out = self.key(key);
        out.push('[');
        for (i, item) in items.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(item.as_ref());
        }
        out.push(']');
        self
    }

    /// Close the object and return the document.
    pub fn finish(self) -> String {
        format!("{{{}}}", self.body)
    }
}

/// Escape a string for embedding in a JSON document.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Parse a complete JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
    if b.get(*pos) == Some(&ch) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {}", ch as char, pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Value::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_num(b, pos),
        Some(c) => Err(format!("unexpected `{}` at byte {}", *c as char, pos)),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>().map(Value::Num).map_err(|_| format!("bad number `{text}` at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(&c) => {
                // Multi-byte UTF-8 passes through unchanged.
                let ch_len = utf8_len(c);
                let chunk = b.get(*pos..*pos + ch_len).ok_or("truncated UTF-8")?;
                out.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                *pos += ch_len;
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}")),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(members));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        members.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(members));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        let v = parse(r#"{"a": [1, -2.5, 1e-6], "b": "x\n", "c": true, "d": null}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].as_num(), Some(-2.5));
        assert_eq!(v.get("b").unwrap().as_str(), Some("x\n"));
        assert_eq!(v.get("c"), Some(&Value::Bool(true)));
        assert_eq!(v.get("d"), Some(&Value::Null));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} x").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn nested_objects_roundtrip() {
        let v = parse(r#"{"m": {"k": {"deep": [{"x": 0.125}]}}}"#).unwrap();
        let deep = v.get("m").unwrap().get("k").unwrap().get("deep").unwrap();
        assert_eq!(deep.as_arr().unwrap()[0].get("x").unwrap().as_num(), Some(0.125));
    }

    #[test]
    fn unicode_and_escapes() {
        let v = parse(r#""café ☕""#).unwrap();
        assert_eq!(v.as_str(), Some("café ☕"));
    }

    #[test]
    fn writer_output_round_trips_through_the_parser() {
        let inner = JsonWriter::new().u64("hits", 3).f64("rate", 0.5, 4).finish();
        let doc = JsonWriter::new()
            .str("label", "a \"quoted\"\nlabel")
            .u64("requests", 1000)
            .f64("p99_ms", 1.23456, 3)
            .f64("bad", f64::NAN, 3)
            .bool("ok", true)
            .raw("cache", &inner)
            .arr("xs", &["1", "2.5", "\"s\""])
            .finish();
        let v = parse(&doc).expect("writer emits valid JSON");
        assert_eq!(v.get("label").unwrap().as_str(), Some("a \"quoted\"\nlabel"));
        assert_eq!(v.get("requests").unwrap().as_num(), Some(1000.0));
        assert_eq!(v.get("p99_ms").unwrap().as_num(), Some(1.235));
        assert_eq!(v.get("bad"), Some(&Value::Null));
        assert_eq!(v.get("ok"), Some(&Value::Bool(true)));
        assert_eq!(v.get("cache").unwrap().get("hits").unwrap().as_num(), Some(3.0));
        assert_eq!(v.get("xs").unwrap().as_arr().unwrap().len(), 3);
    }

    #[test]
    fn writer_empty_object_is_valid() {
        assert_eq!(JsonWriter::new().finish(), "{}");
        assert_eq!(parse("{}").unwrap(), Value::Obj(vec![]));
    }
}
