//! A minimal JSON parser, just enough to validate the crate's own exports
//! (Chrome traces, `BENCH_trace.json`) in tests and the CI smoke step
//! without a serde dependency. Accepts standard JSON; numbers are f64.

/// A parsed JSON value. Object keys keep document order.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object member lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parse a complete JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
    if b.get(*pos) == Some(&ch) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {}", ch as char, pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Value::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_num(b, pos),
        Some(c) => Err(format!("unexpected `{}` at byte {}", *c as char, pos)),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>().map(Value::Num).map_err(|_| format!("bad number `{text}` at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(&c) => {
                // Multi-byte UTF-8 passes through unchanged.
                let ch_len = utf8_len(c);
                let chunk = b.get(*pos..*pos + ch_len).ok_or("truncated UTF-8")?;
                out.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                *pos += ch_len;
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}")),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(members));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        members.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(members));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        let v = parse(r#"{"a": [1, -2.5, 1e-6], "b": "x\n", "c": true, "d": null}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].as_num(), Some(-2.5));
        assert_eq!(v.get("b").unwrap().as_str(), Some("x\n"));
        assert_eq!(v.get("c"), Some(&Value::Bool(true)));
        assert_eq!(v.get("d"), Some(&Value::Null));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} x").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn nested_objects_roundtrip() {
        let v = parse(r#"{"m": {"k": {"deep": [{"x": 0.125}]}}}"#).unwrap();
        let deep = v.get("m").unwrap().get("k").unwrap().get("deep").unwrap();
        assert_eq!(deep.as_arr().unwrap()[0].get("x").unwrap().as_num(), Some(0.125));
    }

    #[test]
    fn unicode_and_escapes() {
        let v = parse(r#""café ☕""#).unwrap();
        assert_eq!(v.as_str(), Some("café ☕"));
    }
}
