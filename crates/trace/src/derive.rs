//! Derived metrics over span sets: the Fig 8 overlap-efficiency ratio.
//!
//! Overlap efficiency asks how much of the communication time was hidden
//! behind compute on the same GPU — the whole point of the §6.3 dedicated
//! comm stream. For each GPU we take the union of its compute intervals
//! and measure how much of each comm interval it covers:
//!
//! `efficiency = hidden_comm_seconds / total_comm_seconds`
//!
//! 1.0 means communication is fully pipelined (Fig 8 bottom); 0.0 means
//! every byte was exposed on the critical path.

use mggcn_gpusim::{Category, Timeline};
use std::collections::BTreeSet;

/// Comm/compute overlap totals across all GPUs.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Overlap {
    /// Total communication seconds (per-GPU lane time, summed).
    pub comm_seconds: f64,
    /// The part of `comm_seconds` covered by same-GPU compute.
    pub hidden_seconds: f64,
}

impl Overlap {
    /// `hidden / comm`; 0 when there was no communication at all.
    pub fn efficiency(&self) -> f64 {
        if self.comm_seconds > 0.0 {
            self.hidden_seconds / self.comm_seconds
        } else {
            0.0
        }
    }

    pub fn accumulate(&mut self, other: Overlap) {
        self.comm_seconds += other.comm_seconds;
        self.hidden_seconds += other.hidden_seconds;
    }
}

/// Merge possibly-overlapping intervals into a disjoint sorted union.
pub fn interval_union(mut iv: Vec<(f64, f64)>) -> Vec<(f64, f64)> {
    iv.retain(|(a, b)| b > a);
    iv.sort_by(|x, y| x.0.total_cmp(&y.0));
    let mut out: Vec<(f64, f64)> = Vec::with_capacity(iv.len());
    for (a, b) in iv {
        match out.last_mut() {
            Some((_, prev_end)) if a <= *prev_end => *prev_end = prev_end.max(b),
            _ => out.push((a, b)),
        }
    }
    out
}

/// Total length of the intersection between `intervals` and a disjoint
/// sorted `union` (as produced by [`interval_union`]).
fn covered_length(intervals: &[(f64, f64)], union: &[(f64, f64)]) -> f64 {
    let mut total = 0.0;
    for &(a, b) in intervals {
        // Binary search for the first union interval that could intersect.
        let mut lo = union.partition_point(|&(_, end)| end <= a);
        while lo < union.len() && union[lo].0 < b {
            let (ua, ub) = union[lo];
            total += (b.min(ub) - a.max(ua)).max(0.0);
            lo += 1;
        }
    }
    total
}

/// Overlap stats of one timeline: spans are grouped by GPU; `Comm`
/// intervals are checked against the union of that GPU's non-comm,
/// non-barrier spans.
pub fn overlap_of_timeline(tl: &Timeline) -> Overlap {
    let gpus = tl.spans.iter().map(|s| s.gpu + 1).max().unwrap_or(0);
    let mut out = Overlap::default();
    for g in 0..gpus {
        let comm: Vec<(f64, f64)> = tl
            .spans
            .iter()
            .filter(|s| s.gpu == g && s.category == Category::Comm)
            .map(|s| (s.start, s.end))
            .collect();
        let compute = interval_union(
            tl.spans
                .iter()
                .filter(|s| {
                    s.gpu == g && s.category != Category::Comm && s.category != Category::Barrier
                })
                .map(|s| (s.start, s.end))
                .collect(),
        );
        out.comm_seconds += comm.iter().map(|(a, b)| b - a).sum::<f64>();
        out.hidden_seconds += covered_length(&comm, &compute);
    }
    out
}

/// Per-epoch comm overlap over a fused multi-epoch timeline (DESIGN §15).
/// The comm side is epoch `e`'s tagged comm spans — optionally restricted
/// to the op set `ops` (e.g. the node-crossing collectives, for NIC
/// overlap efficiency) — while the hiding compute union spans the whole
/// timeline: a prefetch broadcast issued during the *previous* epoch's
/// backward pass counts as hidden, which is exactly the quantity
/// bounded-staleness pipelining improves.
pub fn overlap_of_epoch_comm(tl: &Timeline, e: usize, ops: Option<&BTreeSet<usize>>) -> Overlap {
    let gpus = tl.spans.iter().map(|s| s.gpu + 1).max().unwrap_or(0);
    let mut out = Overlap::default();
    for g in 0..gpus {
        let comm: Vec<(f64, f64)> = tl
            .spans
            .iter()
            .filter(|s| {
                s.gpu == g
                    && s.category == Category::Comm
                    && s.epoch == Some(e)
                    && ops.is_none_or(|set| set.contains(&s.op))
            })
            .map(|s| (s.start, s.end))
            .collect();
        let compute = interval_union(
            tl.spans
                .iter()
                .filter(|s| {
                    s.gpu == g && s.category != Category::Comm && s.category != Category::Barrier
                })
                .map(|s| (s.start, s.end))
                .collect(),
        );
        out.comm_seconds += comm.iter().map(|(a, b)| b - a).sum::<f64>();
        out.hidden_seconds += covered_length(&comm, &compute);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mggcn_gpusim::Span;

    fn span(gpu: usize, cat: Category, start: f64, end: f64) -> Span {
        Span {
            gpu,
            stream: usize::from(cat == Category::Comm),
            category: cat,
            stage: None,
            label: "t",
            start,
            end,
            op: 0,
            bytes: 0.0,
            reads: 0,
            writes: 0,
            epoch: None,
        }
    }

    #[test]
    fn union_merges_overlaps() {
        let u = interval_union(vec![(0.0, 1.0), (0.5, 2.0), (3.0, 4.0), (4.0, 5.0)]);
        assert_eq!(u, vec![(0.0, 2.0), (3.0, 5.0)]);
    }

    #[test]
    fn union_drops_empty() {
        assert_eq!(interval_union(vec![(1.0, 1.0), (2.0, 1.0)]), vec![]);
    }

    #[test]
    fn fully_hidden_comm() {
        let tl = Timeline {
            spans: vec![span(0, Category::SpMM, 0.0, 10.0), span(0, Category::Comm, 2.0, 4.0)],
        };
        let o = overlap_of_timeline(&tl);
        assert!((o.comm_seconds - 2.0).abs() < 1e-12);
        assert!((o.hidden_seconds - 2.0).abs() < 1e-12);
        assert!((o.efficiency() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fully_exposed_comm() {
        let tl = Timeline {
            spans: vec![span(0, Category::SpMM, 0.0, 1.0), span(0, Category::Comm, 1.0, 3.0)],
        };
        let o = overlap_of_timeline(&tl);
        assert_eq!(o.hidden_seconds, 0.0);
        assert_eq!(o.efficiency(), 0.0);
    }

    #[test]
    fn partial_overlap_and_cross_gpu_isolation() {
        // GPU 0: compute [0,2], comm [1,3] -> 1s of 2 hidden.
        // GPU 1's compute must not hide GPU 0's comm.
        let tl = Timeline {
            spans: vec![
                span(0, Category::SpMM, 0.0, 2.0),
                span(0, Category::Comm, 1.0, 3.0),
                span(1, Category::SpMM, 0.0, 100.0),
            ],
        };
        let o = overlap_of_timeline(&tl);
        assert!((o.comm_seconds - 2.0).abs() < 1e-12);
        assert!((o.hidden_seconds - 1.0).abs() < 1e-12);
        assert!((o.efficiency() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn barrier_spans_do_not_hide_comm() {
        let tl = Timeline {
            spans: vec![span(0, Category::Barrier, 0.0, 10.0), span(0, Category::Comm, 2.0, 4.0)],
        };
        assert_eq!(overlap_of_timeline(&tl).hidden_seconds, 0.0);
    }

    #[test]
    fn no_comm_is_zero_efficiency() {
        let tl = Timeline { spans: vec![span(0, Category::SpMM, 0.0, 1.0)] };
        assert_eq!(overlap_of_timeline(&tl).efficiency(), 0.0);
    }

    #[test]
    fn epoch_comm_hides_under_any_epochs_compute() {
        // Epoch 1's prefetch broadcast [1,3] rides under epoch 0's backward
        // compute [0,4]: it must count as hidden for epoch 1 even though
        // the hiding compute is tagged epoch 0.
        let mut compute = span(0, Category::SpMM, 0.0, 4.0);
        compute.epoch = Some(0);
        let mut bcast = span(0, Category::Comm, 1.0, 3.0);
        bcast.epoch = Some(1);
        bcast.op = 7;
        let tl = Timeline { spans: vec![compute, bcast] };
        let o = overlap_of_epoch_comm(&tl, 1, None);
        assert!((o.comm_seconds - 2.0).abs() < 1e-12);
        assert!((o.hidden_seconds - 2.0).abs() < 1e-12);
        // Epoch 0 has no comm at all.
        assert_eq!(overlap_of_epoch_comm(&tl, 0, None).comm_seconds, 0.0);
        // An op filter that excludes the broadcast zeroes the comm side.
        let none: BTreeSet<usize> = BTreeSet::new();
        assert_eq!(overlap_of_epoch_comm(&tl, 1, Some(&none)).comm_seconds, 0.0);
        let nic: BTreeSet<usize> = [7].into_iter().collect();
        assert!((overlap_of_epoch_comm(&tl, 1, Some(&nic)).hidden_seconds - 2.0).abs() < 1e-12);
    }
}
