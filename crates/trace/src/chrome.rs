//! Chrome Trace Event Format export over both clock domains.
//!
//! Simulated spans become processes `pid = gpu` ("GPU g (sim)"); measured
//! wall-clock spans from the threaded backend become processes
//! `pid = WALL_PID_BASE + gpu` ("GPU g (wall)") so chrome://tracing shows
//! the DES prediction and the real execution stacked in one view. Streams
//! map to threads. All timestamps are microseconds with fixed `%.3f`
//! formatting, so equal span sets serialize byte-identically.

use crate::{Clock, TraceSpan};
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Wall-clock processes live at `gpu + WALL_PID_BASE` to keep the two
/// domains visually separate in the viewer.
pub const WALL_PID_BASE: usize = 1000;

fn pid(span: &TraceSpan) -> usize {
    match span.clock {
        Clock::Sim => span.gpu,
        Clock::Wall => WALL_PID_BASE + span.gpu,
    }
}

/// Render spans as a Trace Event Format JSON string. Pass wall spans as an
/// empty slice for a simulated-clock-only export (the golden-test form:
/// byte-identical across kernel-pool widths and backends).
pub fn chrome_trace(sim: &[TraceSpan], wall: &[TraceSpan]) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;

    // Process / thread name metadata, sorted for determinism.
    let mut procs: BTreeSet<(usize, usize, Clock)> = BTreeSet::new();
    let mut lanes: BTreeSet<(usize, usize)> = BTreeSet::new();
    for s in sim.iter().chain(wall) {
        procs.insert((pid(s), s.gpu, s.clock));
        lanes.insert((pid(s), s.stream));
    }
    for &(pid, gpu, clock) in &procs {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let domain = match clock {
            Clock::Sim => "sim",
            Clock::Wall => "wall",
        };
        write!(
            out,
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
             \"args\":{{\"name\":\"GPU {gpu} ({domain})\"}}}}"
        )
        .expect("write to string");
    }
    for &(pid, stream) in &lanes {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let kind = if stream == 0 { "compute" } else { "comm" };
        write!(
            out,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{stream},\
             \"args\":{{\"name\":\"stream {stream} ({kind})\"}}}}"
        )
        .expect("write to string");
    }

    for s in sim.iter().chain(wall) {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let ts = s.start * 1e6;
        let dur = (s.end - s.start) * 1e6;
        let stage = s.stage.map(|x| x as i64).unwrap_or(-1);
        write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{ts:.3},\"dur\":{dur:.3},\
             \"pid\":{},\"tid\":{},\"args\":{{\"stage\":{stage},\"bytes\":{:.0},\
             \"reads\":{},\"writes\":{}}}}}",
            s.label,
            s.category.name(),
            pid(s),
            s.stream,
            s.bytes,
            s.reads,
            s.writes,
        )
        .expect("write to string");
    }
    out.push_str("\n]}\n");
    out
}

/// Summary returned by a successful schema validation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChromeSummary {
    /// Complete (`"X"`) events.
    pub events: usize,
    /// Metadata (`"M"`) events.
    pub metas: usize,
}

/// Validate Chrome-trace JSON structurally: a `traceEvents` array whose
/// members are `"X"` events with finite non-negative `ts`/`dur` and
/// integer `pid`/`tid`, or `"M"` metadata with an `args.name`.
pub fn validate_chrome_trace(text: &str) -> Result<ChromeSummary, String> {
    let root = crate::json::parse(text)?;
    let events =
        root.get("traceEvents").and_then(|v| v.as_arr()).ok_or("missing traceEvents array")?;
    let mut summary = ChromeSummary { events: 0, metas: 0 };
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        ev.get("name")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("event {i}: missing name"))?;
        match ph {
            "X" => {
                for key in ["ts", "dur", "pid", "tid"] {
                    let num = ev
                        .get(key)
                        .and_then(|v| v.as_num())
                        .ok_or_else(|| format!("event {i}: missing {key}"))?;
                    if !num.is_finite() || num < 0.0 {
                        return Err(format!("event {i}: bad {key} {num}"));
                    }
                }
                summary.events += 1;
            }
            "M" => {
                ev.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(|v| v.as_str())
                    .ok_or_else(|| format!("event {i}: metadata without args.name"))?;
                summary.metas += 1;
            }
            other => return Err(format!("event {i}: unknown ph {other:?}")),
        }
    }
    Ok(summary)
}

/// Validate a `BENCH_trace.json` document: the envelope fields plus a
/// complete metrics registry and the derived block.
pub fn validate_bench_trace(text: &str) -> Result<(), String> {
    let root = crate::json::parse(text)?;
    match root.get("bench").and_then(|v| v.as_str()) {
        Some("trace") => {}
        other => return Err(format!("bench field is {other:?}, expected \"trace\"")),
    }
    match root.get("schema").and_then(|v| v.as_str()) {
        Some(crate::BENCH_TRACE_SCHEMA) => {}
        other => return Err(format!("schema field is {other:?}")),
    }
    let metrics = root.get("metrics").ok_or("missing metrics")?;
    for family in ["counters", "gauges", "histograms"] {
        let fam = metrics
            .get(family)
            .and_then(|v| v.as_obj())
            .ok_or_else(|| format!("missing metrics.{family}"))?;
        if family != "histograms" {
            for (k, v) in fam {
                if v.as_num().is_none() {
                    return Err(format!("metrics.{family}.{k} is not a number"));
                }
            }
        }
    }
    let derived = root.get("derived").ok_or("missing derived")?;
    for key in ["overlap_efficiency", "comm_seconds", "hidden_comm_seconds"] {
        if derived.get(key).and_then(|v| v.as_num()).is_none() {
            return Err(format!("missing derived.{key}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mggcn_gpusim::Category;

    fn sim_span(gpu: usize, label: &'static str, start: f64, end: f64) -> TraceSpan {
        TraceSpan {
            clock: Clock::Sim,
            gpu,
            stream: 0,
            category: Category::SpMM,
            stage: Some(1),
            label,
            start,
            end,
            bytes: 128.0,
            reads: 2,
            writes: 1,
        }
    }

    #[test]
    fn export_is_schema_valid_and_deterministic() {
        let sim = vec![sim_span(0, "spmm", 0.0, 1e-3), sim_span(1, "spmm", 0.0, 2e-3)];
        let wall = vec![TraceSpan {
            clock: Clock::Wall,
            gpu: 0,
            stream: 0,
            category: Category::Barrier,
            stage: None,
            label: "wait",
            start: 0.0,
            end: 5e-4,
            bytes: 0.0,
            reads: 0,
            writes: 0,
        }];
        let a = chrome_trace(&sim, &wall);
        let b = chrome_trace(&sim, &wall);
        assert_eq!(a, b);
        let summary = validate_chrome_trace(&a).expect("valid");
        assert_eq!(summary.events, 3);
        assert!(a.contains("GPU 0 (sim)"));
        assert!(a.contains("GPU 0 (wall)"));
        assert!(a.contains(&format!("\"pid\":{}", WALL_PID_BASE)));
        assert!(a.contains("\"bytes\":128"));
        assert!(a.contains("\"reads\":2,\"writes\":1"));
    }

    #[test]
    fn empty_trace_is_valid() {
        let text = chrome_trace(&[], &[]);
        let summary = validate_chrome_trace(&text).expect("valid");
        assert_eq!(summary, ChromeSummary { events: 0, metas: 0 });
    }

    #[test]
    fn validator_rejects_malformed() {
        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":[{\"ph\":\"X\"}]}").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":[{\"name\":\"x\",\"ph\":\"Q\"}]}").is_err());
        let neg = "{\"traceEvents\":[{\"name\":\"x\",\"ph\":\"X\",\"ts\":-1,\
                   \"dur\":0,\"pid\":0,\"tid\":0}]}";
        assert!(validate_chrome_trace(neg).is_err());
    }
}
