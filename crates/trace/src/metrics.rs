//! Counters, gauges, and histograms with deterministic JSON export.
//!
//! Keys are flat dotted strings (`sim.bcast.bytes.stage.00001`); storage
//! is `BTreeMap` so serialization order — and therefore the exported
//! `BENCH_trace.json` — is stable across runs.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Default histogram buckets for latencies in seconds: decades from 1µs
/// to 1s (plus the implicit overflow bucket).
pub const LATENCY_BOUNDS: [f64; 7] = [1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0];

/// A fixed-bucket histogram. `counts` has one slot per bound plus an
/// overflow slot.
#[derive(Clone, Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    sum: f64,
    max: f64,
}

impl Histogram {
    pub fn new(bounds: &[f64]) -> Self {
        Self { bounds: bounds.to_vec(), counts: vec![0; bounds.len() + 1], sum: 0.0, max: 0.0 }
    }

    pub fn record(&mut self, v: f64) {
        let slot = self.bounds.iter().position(|&b| v <= b).unwrap_or(self.bounds.len());
        self.counts[slot] += 1;
        self.sum += v;
        self.max = self.max.max(v);
    }

    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    pub fn sum(&self) -> f64 {
        self.sum
    }

    pub fn max(&self) -> f64 {
        self.max
    }

    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum / n as f64
        }
    }

    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    pub fn counts(&self) -> &[u64] {
        &self.counts
    }
}

/// Deterministic f64 → JSON number (shortest round-trip form; non-finite
/// values cannot occur in exported metrics, but degrade to 0 defensively).
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "0".into()
    }
}

/// The registry: three flat, independently-keyed metric families.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn counter_add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// All counters whose key starts with `prefix`, in key order.
    pub fn counters_with_prefix(&self, prefix: &str) -> Vec<(String, u64)> {
        self.counters
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    pub fn gauge_set(&mut self, name: &str, v: f64) {
        self.gauges.insert(name.to_string(), v);
    }

    /// Accumulating gauge (busy-seconds style).
    pub fn gauge_add(&mut self, name: &str, delta: f64) {
        *self.gauges.entry(name.to_string()).or_insert(0.0) += delta;
    }

    /// High-watermark gauge: keeps the maximum ever observed.
    pub fn gauge_max(&mut self, name: &str, v: f64) {
        let slot = self.gauges.entry(name.to_string()).or_insert(f64::NEG_INFINITY);
        *slot = slot.max(v);
    }

    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    pub fn gauges_with_prefix(&self, prefix: &str) -> Vec<(String, f64)> {
        self.gauges
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    pub fn histogram_record(&mut self, name: &str, v: f64, bounds: &[f64]) {
        self.histograms.entry(name.to_string()).or_insert_with(|| Histogram::new(bounds)).record(v);
    }

    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Serialize the whole registry as one JSON object:
    /// `{"counters":{...},"gauges":{...},"histograms":{...}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write!(out, "\"{k}\":{v}").expect("write to string");
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write!(out, "\"{k}\":{}", json_f64(*v)).expect("write to string");
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let bounds: Vec<String> = h.bounds().iter().map(|b| json_f64(*b)).collect();
            let counts: Vec<String> = h.counts().iter().map(|c| c.to_string()).collect();
            write!(
                out,
                "\"{k}\":{{\"bounds\":[{}],\"counts\":[{}],\"count\":{},\"sum\":{},\"max\":{}}}",
                bounds.join(","),
                counts.join(","),
                h.count(),
                json_f64(h.sum()),
                json_f64(h.max())
            )
            .expect("write to string");
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = MetricsRegistry::new();
        m.counter_add("a.b", 3);
        m.counter_add("a.b", 4);
        m.counter_add("a.c", 1);
        assert_eq!(m.counter("a.b"), 7);
        assert_eq!(m.counter("missing"), 0);
        assert_eq!(
            m.counters_with_prefix("a."),
            vec![("a.b".to_string(), 7), ("a.c".to_string(), 1)]
        );
    }

    #[test]
    fn gauge_semantics() {
        let mut m = MetricsRegistry::new();
        m.gauge_set("x", 2.0);
        m.gauge_set("x", 1.0);
        assert_eq!(m.gauge("x"), Some(1.0));
        m.gauge_max("hw", 5.0);
        m.gauge_max("hw", 3.0);
        assert_eq!(m.gauge("hw"), Some(5.0));
        m.gauge_add("busy", 0.25);
        m.gauge_add("busy", 0.25);
        assert_eq!(m.gauge("busy"), Some(0.5));
    }

    #[test]
    fn histogram_buckets_and_stats() {
        let mut h = Histogram::new(&[1.0, 10.0]);
        h.record(0.5);
        h.record(5.0);
        h.record(50.0);
        assert_eq!(h.counts(), &[1, 1, 1]);
        assert_eq!(h.count(), 3);
        assert!((h.mean() - 55.5 / 3.0).abs() < 1e-12);
        assert_eq!(h.max(), 50.0);
    }

    #[test]
    fn json_is_deterministic_and_parseable() {
        let mut m = MetricsRegistry::new();
        m.counter_add("z", 1);
        m.counter_add("a", 2);
        m.gauge_set("g", 0.5);
        m.histogram_record("h", 2e-5, &LATENCY_BOUNDS);
        let a = m.to_json();
        let b = m.to_json();
        assert_eq!(a, b);
        let v = crate::json::parse(&a).expect("valid json");
        assert_eq!(v.get("counters").unwrap().get("a").unwrap().as_num(), Some(2.0));
        assert_eq!(v.get("gauges").unwrap().get("g").unwrap().as_num(), Some(0.5));
        let h = v.get("histograms").unwrap().get("h").unwrap();
        assert_eq!(h.get("count").unwrap().as_num(), Some(1.0));
    }
}
