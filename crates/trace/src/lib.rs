//! mggcn-trace — structured tracing and metrics for the MG-GCN repro.
//!
//! The paper's headline claims are *observable* properties: the `L + 3`
//! big-buffer bound (§4.2, Fig 12), per-stage broadcast volume (§5.1) and
//! the comm/comp overlap timeline (Fig 8). This crate collects the
//! evidence in one place:
//!
//! * **Typed spans** over two clock domains — the DES's simulated clock
//!   ([`Clock::Sim`], from `gpusim` timelines) and the threaded backend's
//!   measured wall clock ([`Clock::Wall`], from `mggcn-exec` spans,
//!   including `Barrier` rendezvous waits) — exported together as Chrome
//!   `chrome://tracing` JSON ([`chrome::chrome_trace`]).
//! * **A metrics registry** (counters / gauges / histograms,
//!   [`metrics::MetricsRegistry`]) serialized into `BENCH_trace.json`.
//! * **Derived metrics**: per-GPU memory high-watermark checked against
//!   `memplan`'s `L + 3` bound, per-stage broadcast bytes checked against
//!   `comm::analysis` closed forms, and the Fig 8 overlap-efficiency
//!   ratio ([`derive::Overlap`]).
//!
//! Tracing is **observation-only and zero-cost when disabled**: producers
//! hold an `Option<Arc<Tracer>>` and ingest *after* a schedule has run,
//! reading completed timelines — never touching schedule construction,
//! numerics, or op ordering. With `None` there is no tracer call at all.

#![forbid(unsafe_code)]

pub mod chrome;
pub mod derive;
pub mod json;
pub mod metrics;

use derive::Overlap;
use metrics::{json_f64, MetricsRegistry, LATENCY_BOUNDS};
use mggcn_exec::WallSpan;
use mggcn_gpusim::{Category, MachineSpec, Timeline};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::sync::Mutex;

/// Schema tag stamped into (and required from) `BENCH_trace.json`.
pub const BENCH_TRACE_SCHEMA: &str = "mggcn-trace-v1";

/// Which clock a span was measured on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Clock {
    /// The DES's simulated time (deterministic, machine-model seconds).
    Sim,
    /// Real wall-clock offsets measured by the threaded backend.
    Wall,
}

/// One recorded span, in either clock domain. Times are seconds from the
/// tracer's epoch; successive ingests concatenate end-to-end so a multi-
/// epoch training run renders as one continuous timeline.
#[derive(Clone, Copy, Debug)]
pub struct TraceSpan {
    pub clock: Clock,
    pub gpu: usize,
    pub stream: usize,
    pub category: Category,
    pub stage: Option<usize>,
    pub label: &'static str,
    pub start: f64,
    pub end: f64,
    /// Bytes moved (collective payloads, kernel memory traffic); 0 when
    /// unknown or not applicable.
    pub bytes: f64,
    /// Count of logical buffers the op declared reading; 0 when
    /// unannotated (and for measured wall spans, which carry no effects).
    pub reads: u32,
    /// Count of logical buffers the op declared writing; 0 when
    /// unannotated.
    pub writes: u32,
}

#[derive(Debug, Default)]
struct Inner {
    sim_spans: Vec<TraceSpan>,
    wall_spans: Vec<TraceSpan>,
    metrics: MetricsRegistry,
    overlap: Overlap,
    /// Clock cursors: where the next ingested timeline/run starts.
    sim_cursor: f64,
    wall_cursor: f64,
}

/// The collector. Shared as `Arc<Tracer>`; all methods take `&self`
/// (interior mutability), so one tracer can observe a trainer and a
/// server at once.
#[derive(Debug, Default)]
pub struct Tracer {
    inner: Mutex<Inner>,
}

impl Tracer {
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Ingest one completed simulated timeline (one schedule run). Spans
    /// are shifted onto the tracer's continuous sim clock; byte counters
    /// are deduplicated by op id (collectives span every lane but move
    /// their payload once).
    pub fn ingest_sim_timeline(&self, tl: &Timeline, makespan: f64) {
        self.ingest_sim(tl, makespan, None);
    }

    /// [`Tracer::ingest_sim_timeline`] with node topology: comm bytes are
    /// additionally split into `sim.comm.bytes.intra_node` /
    /// `sim.comm.bytes.inter_node` counters by whether each op's
    /// participant GPUs span a node boundary of `machine`. On a
    /// single-node machine everything is intra-node, so the split is
    /// purely additive — every counter the plain ingest writes is written
    /// identically.
    pub fn ingest_sim_timeline_on(&self, tl: &Timeline, makespan: f64, machine: &MachineSpec) {
        self.ingest_sim(tl, makespan, Some(machine));
    }

    fn ingest_sim(&self, tl: &Timeline, makespan: f64, machine: Option<&MachineSpec>) {
        // Collectives span one lane per participant; gather each comm op's
        // GPU set first so node-crossing is judged on the full group.
        let op_gpus: BTreeMap<usize, Vec<usize>> = machine
            .map(|_| {
                let mut m: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
                for s in &tl.spans {
                    if s.category == Category::Comm {
                        let gpus = m.entry(s.op).or_default();
                        if !gpus.contains(&s.gpu) {
                            gpus.push(s.gpu);
                        }
                    }
                }
                m
            })
            .unwrap_or_default();
        let mut inner = self.lock();
        let at = inner.sim_cursor;
        let mut seen_ops: BTreeSet<usize> = BTreeSet::new();
        for s in &tl.spans {
            inner.sim_spans.push(TraceSpan {
                clock: Clock::Sim,
                gpu: s.gpu,
                stream: s.stream,
                category: s.category,
                stage: s.stage,
                label: s.label,
                start: at + s.start,
                end: at + s.end,
                bytes: s.bytes,
                reads: s.reads,
                writes: s.writes,
            });
            inner
                .metrics
                .gauge_add(&format!("sim.busy_seconds.{}", s.category.name()), s.duration());
            if s.category == Category::Comm && seen_ops.insert(s.op) {
                let bytes = s.bytes.round() as u64;
                inner.metrics.counter_add("sim.comm.bytes.total", bytes);
                if let Some(m) = machine {
                    let crosses = m.crosses_nodes(&op_gpus[&s.op]);
                    let key = if crosses {
                        "sim.comm.bytes.inter_node"
                    } else {
                        "sim.comm.bytes.intra_node"
                    };
                    inner.metrics.counter_add(key, bytes);
                }
                if let Some(stage) = s.stage {
                    inner.metrics.counter_add(&format!("sim.bcast.bytes.stage.{stage:05}"), bytes);
                    inner.metrics.counter_add("sim.bcast.bytes.total", bytes);
                }
            }
        }
        let overlap = derive::overlap_of_timeline(tl);
        inner.overlap.accumulate(overlap);
        inner.metrics.gauge_add("sim.overlap.comm_seconds", overlap.comm_seconds);
        inner.metrics.gauge_add("sim.overlap.hidden_seconds", overlap.hidden_seconds);
        // Fused bounded-staleness timelines (epoch-tagged spans, DESIGN
        // §15) additionally report broadcast-hidden time per epoch, plus
        // the NIC (node-crossing) slice when topology is known. Untagged
        // timelines write none of these, so every pre-staleness trace
        // artifact is byte-identical.
        let epochs: BTreeSet<usize> = tl.spans.iter().filter_map(|s| s.epoch).collect();
        if !epochs.is_empty() {
            let nic_ops: BTreeSet<usize> = machine
                .map(|m| {
                    op_gpus
                        .iter()
                        .filter(|(_, gpus)| m.crosses_nodes(gpus))
                        .map(|(&op, _)| op)
                        .collect()
                })
                .unwrap_or_default();
            for &e in &epochs {
                let o = derive::overlap_of_epoch_comm(tl, e, None);
                inner
                    .metrics
                    .gauge_add(&format!("sim.overlap.epoch{e:05}.comm_seconds"), o.comm_seconds);
                inner.metrics.gauge_add(
                    &format!("sim.overlap.epoch{e:05}.hidden_seconds"),
                    o.hidden_seconds,
                );
                if machine.is_some() {
                    let n = derive::overlap_of_epoch_comm(tl, e, Some(&nic_ops));
                    inner.metrics.gauge_add(
                        &format!("sim.overlap.epoch{e:05}.nic_comm_seconds"),
                        n.comm_seconds,
                    );
                    inner.metrics.gauge_add(
                        &format!("sim.overlap.epoch{e:05}.nic_hidden_seconds"),
                        n.hidden_seconds,
                    );
                }
            }
        }
        inner.metrics.counter_add("sim.timelines", 1);
        inner.sim_cursor += makespan;
    }

    /// Ingest the threaded backend's measured spans for one run (body
    /// spans plus `Barrier` waits).
    pub fn ingest_wall_spans(&self, spans: &[WallSpan], wall_seconds: f64) {
        let mut inner = self.lock();
        let at = inner.wall_cursor;
        for s in spans {
            inner.wall_spans.push(TraceSpan {
                clock: Clock::Wall,
                gpu: s.gpu,
                stream: s.stream,
                category: s.category,
                stage: None,
                label: s.label,
                start: at + s.start,
                end: at + s.end(),
                bytes: 0.0,
                reads: 0,
                writes: 0,
            });
            inner.metrics.gauge_add(&format!("wall.busy_seconds.{}", s.category.name()), s.seconds);
        }
        inner.metrics.counter_add("wall.runs", 1);
        inner.wall_cursor += wall_seconds;
    }

    /// Record one GPU's big-buffer allocation size; the gauge keeps the
    /// high-watermark (checked against memplan's `L + 3` bound).
    pub fn record_memory(&self, gpu: usize, bytes: u64) {
        self.lock()
            .metrics
            .gauge_max(&format!("mem.high_watermark_bytes.gpu{gpu:03}"), bytes as f64);
    }

    /// Record the planned per-GPU big-buffer budget (`(L + 3)·n_p·d·4`).
    pub fn set_memory_bound(&self, bytes: u64) {
        self.lock().metrics.gauge_set("mem.plan.big_buffers_bytes", bytes as f64);
    }

    pub fn counter_add(&self, name: &str, delta: u64) {
        self.lock().metrics.counter_add(name, delta);
    }

    pub fn counter(&self, name: &str) -> u64 {
        self.lock().metrics.counter(name)
    }

    pub fn gauge_set(&self, name: &str, v: f64) {
        self.lock().metrics.gauge_set(name, v);
    }

    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.lock().metrics.gauge(name)
    }

    /// Record a latency observation (seconds) into a decade-bucket
    /// histogram.
    pub fn latency_record(&self, name: &str, seconds: f64) {
        self.lock().metrics.histogram_record(name, seconds, &LATENCY_BOUNDS);
    }

    /// Accumulated per-stage broadcast bytes (`sim.bcast.bytes.stage.*`),
    /// indexed by stage. Missing stages read as 0.
    pub fn broadcast_stage_bytes(&self) -> Vec<u64> {
        let inner = self.lock();
        let entries = inner.metrics.counters_with_prefix("sim.bcast.bytes.stage.");
        let mut out = Vec::new();
        for (key, v) in entries {
            let idx: usize = key
                .rsplit('.')
                .next()
                .and_then(|t| t.parse().ok())
                .expect("stage counter key ends in an index");
            if idx >= out.len() {
                out.resize(idx + 1, 0);
            }
            out[idx] += v;
        }
        out
    }

    /// Per-GPU memory high-watermarks recorded so far.
    pub fn memory_high_watermarks(&self) -> Vec<(usize, u64)> {
        let inner = self.lock();
        inner
            .metrics
            .gauges_with_prefix("mem.high_watermark_bytes.gpu")
            .into_iter()
            .map(|(key, v)| {
                let idx: usize = key
                    .rsplit("gpu")
                    .next()
                    .and_then(|t| t.parse().ok())
                    .expect("watermark key ends in a gpu index");
                (idx, v.round() as u64)
            })
            .collect()
    }

    /// Does every recorded high-watermark fit the planned budget?
    /// `None` until both sides have been recorded.
    pub fn memory_bound_ok(&self) -> Option<bool> {
        let bound = self.gauge("mem.plan.big_buffers_bytes")?;
        let marks = self.memory_high_watermarks();
        if marks.is_empty() {
            return None;
        }
        Some(marks.iter().all(|&(_, bytes)| bytes as f64 <= bound))
    }

    /// Accumulated comm/compute overlap across every ingested timeline.
    pub fn overlap(&self) -> Overlap {
        self.lock().overlap
    }

    /// Render the Chrome trace. `include_wall = false` gives the
    /// simulated-clock-only export, which is byte-identical across kernel
    /// pool widths and backends (the golden-test form).
    pub fn chrome_trace(&self, include_wall: bool) -> String {
        let inner = self.lock();
        let wall: &[TraceSpan] = if include_wall { &inner.wall_spans } else { &[] };
        chrome::chrome_trace(&inner.sim_spans, wall)
    }

    /// Serialize the registry plus derived metrics as the
    /// `BENCH_trace.json` document (schema [`BENCH_TRACE_SCHEMA`]).
    pub fn bench_json(&self) -> String {
        let overlap = self.overlap();
        let bound_ok = self.memory_bound_ok();
        let inner = self.lock();
        let mut out = String::from("{\"bench\":\"trace\",");
        write!(out, "\"schema\":\"{BENCH_TRACE_SCHEMA}\",").expect("write to string");
        write!(out, "\"metrics\":{},", inner.metrics.to_json()).expect("write to string");
        write!(
            out,
            "\"derived\":{{\"overlap_efficiency\":{},\"comm_seconds\":{},\
             \"hidden_comm_seconds\":{},\"mem_bound_ok\":{},\
             \"sim_seconds\":{},\"wall_seconds\":{}}}}}",
            json_f64(overlap.efficiency()),
            json_f64(overlap.comm_seconds),
            json_f64(overlap.hidden_seconds),
            match bound_ok {
                Some(ok) => ok.to_string(),
                None => "null".into(),
            },
            json_f64(inner.sim_cursor),
            json_f64(inner.wall_cursor),
        )
        .expect("write to string");
        out
    }

    /// Write the Chrome trace to a file.
    pub fn write_chrome_trace(
        &self,
        path: &std::path::Path,
        include_wall: bool,
    ) -> std::io::Result<()> {
        std::fs::write(path, self.chrome_trace(include_wall))
    }

    /// Write `BENCH_trace.json` to a file.
    pub fn write_bench_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.bench_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mggcn_gpusim::Span;

    fn tl() -> Timeline {
        Timeline {
            spans: vec![
                Span {
                    gpu: 0,
                    stream: 0,
                    category: Category::SpMM,
                    stage: Some(0),
                    label: "spmm",
                    start: 0.0,
                    end: 2.0,
                    op: 1,
                    bytes: 0.0,
                    reads: 0,
                    writes: 0,
                    epoch: None,
                },
                // One collective on two lanes: bytes must count once.
                Span {
                    gpu: 0,
                    stream: 1,
                    category: Category::Comm,
                    stage: Some(0),
                    label: "bcast-H",
                    start: 0.0,
                    end: 1.0,
                    op: 2,
                    bytes: 400.0,
                    reads: 0,
                    writes: 0,
                    epoch: None,
                },
                Span {
                    gpu: 1,
                    stream: 1,
                    category: Category::Comm,
                    stage: Some(0),
                    label: "bcast-H",
                    start: 0.0,
                    end: 1.0,
                    op: 2,
                    bytes: 400.0,
                    reads: 0,
                    writes: 0,
                    epoch: None,
                },
                Span {
                    gpu: 1,
                    stream: 1,
                    category: Category::Comm,
                    stage: Some(1),
                    label: "bcast-H",
                    start: 1.0,
                    end: 1.5,
                    op: 3,
                    bytes: 120.0,
                    reads: 0,
                    writes: 0,
                    epoch: None,
                },
            ],
        }
    }

    #[test]
    fn collective_bytes_count_once_per_op() {
        let t = Tracer::new();
        t.ingest_sim_timeline(&tl(), 2.0);
        assert_eq!(t.broadcast_stage_bytes(), vec![400, 120]);
        assert_eq!(t.counter("sim.bcast.bytes.total"), 520);
        assert_eq!(t.counter("sim.comm.bytes.total"), 520);
    }

    #[test]
    fn node_aware_ingest_splits_intra_and_inter_bytes() {
        use mggcn_gpusim::{GpuSpec, MachineSpec};
        // 2 nodes × 2 GPUs: op 2 spans GPUs {0,1} (node 0, intra) and op 3
        // runs on GPU 1 alone (intra by definition).
        let m = MachineSpec::hier_cluster("2x2", GpuSpec::a100(), 2, 2, 12, 25.0e9, 12.5e9);
        let t = Tracer::new();
        t.ingest_sim_timeline_on(&tl(), 2.0, &m);
        assert_eq!(t.counter("sim.comm.bytes.intra_node"), 520);
        assert_eq!(t.counter("sim.comm.bytes.inter_node"), 0);
        // Every counter the plain ingest writes is written identically.
        assert_eq!(t.counter("sim.comm.bytes.total"), 520);
        assert_eq!(t.broadcast_stage_bytes(), vec![400, 120]);

        // Move op 2's second lane to GPU 2 (node 1): its 400 bytes become
        // inter-node; op 3's 120 stay intra.
        let mut cross = tl();
        cross.spans[2].gpu = 2;
        let t2 = Tracer::new();
        t2.ingest_sim_timeline_on(&cross, 2.0, &m);
        assert_eq!(t2.counter("sim.comm.bytes.inter_node"), 400);
        assert_eq!(t2.counter("sim.comm.bytes.intra_node"), 120);
        assert_eq!(t2.counter("sim.comm.bytes.total"), 520);

        // The machine-blind ingest writes neither split counter.
        let t3 = Tracer::new();
        t3.ingest_sim_timeline(&cross, 2.0);
        assert_eq!(t3.counter("sim.comm.bytes.intra_node"), 0);
        assert_eq!(t3.counter("sim.comm.bytes.inter_node"), 0);
    }

    #[test]
    fn epochs_concatenate_on_the_sim_clock() {
        let t = Tracer::new();
        t.ingest_sim_timeline(&tl(), 2.0);
        t.ingest_sim_timeline(&tl(), 2.0);
        assert_eq!(t.counter("sim.timelines"), 2);
        // Second epoch's stage-0 bytes accumulate.
        assert_eq!(t.broadcast_stage_bytes(), vec![800, 240]);
        let trace = t.chrome_trace(false);
        // Second epoch's spmm starts at sim cursor 2.0 -> ts 2e6 us.
        assert!(trace.contains("\"ts\":2000000.000"), "{trace}");
        chrome::validate_chrome_trace(&trace).expect("schema-valid");
    }

    #[test]
    fn memory_watermark_and_bound() {
        let t = Tracer::new();
        assert_eq!(t.memory_bound_ok(), None);
        t.set_memory_bound(1000);
        assert_eq!(t.memory_bound_ok(), None);
        t.record_memory(0, 900);
        t.record_memory(1, 800);
        t.record_memory(1, 700); // watermark keeps 800
        assert_eq!(t.memory_high_watermarks(), vec![(0, 900), (1, 800)]);
        assert_eq!(t.memory_bound_ok(), Some(true));
        t.record_memory(2, 1001);
        assert_eq!(t.memory_bound_ok(), Some(false));
    }

    #[test]
    fn bench_json_is_schema_valid() {
        let t = Tracer::new();
        t.ingest_sim_timeline(&tl(), 2.0);
        t.set_memory_bound(1000);
        t.record_memory(0, 500);
        t.latency_record("serve.latency_seconds", 3e-4);
        let doc = t.bench_json();
        chrome::validate_bench_trace(&doc).expect("schema-valid bench json");
        let v = json::parse(&doc).unwrap();
        assert_eq!(v.get("derived").unwrap().get("mem_bound_ok"), Some(&json::Value::Bool(true)));
    }

    #[test]
    fn wall_spans_ingest_under_their_own_clock() {
        let t = Tracer::new();
        let spans = [
            WallSpan {
                gpu: 0,
                stream: 0,
                category: Category::GeMM,
                label: "gemm",
                start: 0.0,
                seconds: 0.25,
            },
            WallSpan {
                gpu: 1,
                stream: 0,
                category: Category::Barrier,
                label: "gemm",
                start: 0.0,
                seconds: 0.25,
            },
        ];
        t.ingest_wall_spans(&spans, 0.3);
        assert_eq!(t.counter("wall.runs"), 1);
        assert_eq!(t.gauge("wall.busy_seconds.Barrier"), Some(0.25));
        let trace = t.chrome_trace(true);
        assert!(trace.contains("GPU 0 (wall)"));
        // Sim-only export omits them.
        assert!(!t.chrome_trace(false).contains("(wall)"));
    }

    #[test]
    fn overlap_accumulates_across_timelines() {
        let t = Tracer::new();
        t.ingest_sim_timeline(&tl(), 2.0);
        let o = t.overlap();
        // GPU0 comm [0,1] hidden under spmm [0,2]; GPU1 comm [0,1.5] exposed.
        assert!((o.comm_seconds - 2.5).abs() < 1e-12);
        assert!((o.hidden_seconds - 1.0).abs() < 1e-12);
    }
}
