//! In-tree, dependency-free stand-in for `proptest`.
//!
//! The build environment resolves crates hermetically (no registry
//! access), so this crate provides the proptest 1.x API subset the
//! workspace's property tests use: the [`Strategy`] trait with
//! `prop_map`/`prop_flat_map`, range/tuple/`Just`/`collection::vec`/
//! `option::of`/`any` strategies, `ProptestConfig`, and the `proptest!`
//! / `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! inputs via the assertion message and its deterministic seed instead),
//! and case generation is a simple seeded RNG derived from the test name
//! so failures reproduce exactly across runs. Case count defaults to 64
//! and can be raised with the `PROPTEST_CASES` environment variable.

#![forbid(unsafe_code)]

pub mod strategy {
    use rand::rngs::SmallRng;
    use rand::Rng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// The RNG handed to strategies; deterministic per test case.
    pub type TestRng = SmallRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Output of [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;

        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.start..self.end)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(*self.start()..=*self.end())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, G);

    /// Types with a canonical "any value" strategy ([`any`]).
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen()
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.gen::<u64>() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy for the full value range of `T` (see [`any`]).
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// `any::<T>()` — any representable value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Length specifications accepted by [`vec`].
    pub trait SizeRange {
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// A `Vec` of values from `element`, with length drawn from `size`.
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample_len(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }
}

pub mod option {
    use crate::strategy::{Strategy, TestRng};
    use rand::Rng;

    /// `Some` roughly four times out of five, `None` otherwise.
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.gen_bool(0.8) {
                Some(self.0.generate(rng))
            } else {
                None
            }
        }
    }

    pub fn of<S: Strategy>(element: S) -> OptionStrategy<S> {
        OptionStrategy(element)
    }
}

pub mod test_runner {
    use crate::strategy::TestRng;
    use rand::SeedableRng;

    /// Runner configuration; only `cases` is meaningful here.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases =
                std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(64);
            Self { cases }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// An assertion failed: the property is violated.
        Fail(String),
        /// `prop_assume!` rejected the inputs: draw another case.
        Reject(String),
    }

    fn fnv1a(bytes: &[u8]) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Drive one property: draw cases until `config.cases` are accepted,
    /// panicking (with the reproducing seed) on the first failure.
    pub fn run<F>(config: &ProptestConfig, name: &str, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let base = fnv1a(name.as_bytes());
        let mut accepted: u32 = 0;
        let mut attempt: u64 = 0;
        let max_attempts = config.cases as u64 * 20 + 100;
        while accepted < config.cases {
            attempt += 1;
            if attempt > max_attempts {
                panic!(
                    "{name}: gave up after {max_attempts} attempts \
                     ({accepted}/{} cases accepted; prop_assume! rejects too much)",
                    config.cases
                );
            }
            let seed = base ^ attempt.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            let mut rng = TestRng::seed_from_u64(seed);
            match case(&mut rng) {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject(_)) => continue,
                Err(TestCaseError::Fail(msg)) => {
                    panic!("{name}: property failed at case {accepted} (seed {seed:#x}): {msg}")
                }
            }
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

pub use strategy::Just;

/// Define property tests. Mirrors upstream `proptest!`: an optional
/// `#![proptest_config(...)]` header, then `#[test] fn` items whose
/// parameters are `pattern in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($p:pat in $s:expr),* $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            $crate::test_runner::run(&__config, stringify!($name), |__rng| {
                $(let $p = $crate::strategy::Strategy::generate(&($s), __rng);)*
                let mut __case = ||
                    -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                };
                __case()
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Assert inside a `proptest!` body; failure reports the case's seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l == *__r,
                    "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    __l,
                    __r
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(*__l == *__r, $($fmt)+);
            }
        }
    };
}

/// Reject the current case (draw a fresh one) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (usize, Vec<u32>)> {
        (1usize..5).prop_flat_map(|n| {
            (Just(n), crate::collection::vec(0u32..100, n)).prop_map(|(n, v)| (n, v))
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(20))]
        #[test]
        fn ranges_in_bounds(x in 3usize..10, y in 0.0f32..1.0, (n, v) in pair()) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
            prop_assert_eq!(v.len(), n);
        }

        #[test]
        fn assume_rejects(mut x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            x += 2;
            prop_assert!(x % 2 == 0);
        }

        #[test]
        fn option_and_any(o in crate::option::of(1usize..8), b in any::<bool>()) {
            if let Some(v) = o {
                prop_assert!((1..8).contains(&v));
            }
            prop_assert!(usize::from(b) <= 1);
        }
    }

    #[test]
    fn failure_panics_with_seed() {
        let caught = std::panic::catch_unwind(|| {
            crate::test_runner::run(
                &ProptestConfig::with_cases(4),
                "always_fails",
                |_rng| -> Result<(), TestCaseError> { Err(TestCaseError::Fail("nope".into())) },
            );
        });
        let msg = *caught.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("always_fails") && msg.contains("seed"), "{msg}");
    }
}
