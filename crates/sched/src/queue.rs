//! Deterministic event queue.
//!
//! A thin min-heap keyed on `(time, seq)` where `seq` is the insertion index.
//! Ties on time therefore pop in insertion order, which is what every legacy
//! loop in this workspace relied on (batches with equal ready times are
//! serviced in formation order).  An optional seeded mode replaces the
//! insertion index with a per-push pseudo-random tag so chaos tests can
//! explore alternative — but still replayable — tie orders.

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<T> {
    time: f64,
    tie: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.tie == other.tie
    }
}
impl<T> Eq for Entry<T> {}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse for min-heap behavior.
        other.time.total_cmp(&self.time).then_with(|| other.tie.cmp(&self.tie))
    }
}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Min-heap of `(time, payload)` with deterministic tie-breaking.
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    seq: u64,
    jitter: Option<SmallRng>,
}

impl<T> EventQueue<T> {
    /// FIFO tie-breaking: equal times pop in insertion order.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), seq: 0, jitter: None }
    }

    /// Seeded tie-breaking: equal times pop in a pseudo-random but fully
    /// replayable order derived from `seed`.
    pub fn seeded(seed: u64) -> Self {
        EventQueue { heap: BinaryHeap::new(), seq: 0, jitter: Some(SmallRng::seed_from_u64(seed)) }
    }

    pub fn push(&mut self, time: f64, payload: T) {
        assert!(!time.is_nan(), "event time must not be NaN");
        let tie = match &mut self.jitter {
            Some(rng) => rng.next_u64(),
            None => self.seq,
        };
        self.seq += 1;
        self.heap.push(Entry { time, tie, payload });
    }

    /// Earliest pending event time, if any.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.time)
    }

    pub fn pop(&mut self) -> Option<(f64, T)> {
        self.heap.pop().map(|e| (e.time, e.payload))
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(3.0, "c");
        q.push(1.0, "a");
        q.push(2.0, "b");
        assert_eq!(q.peek_time(), Some(1.0));
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..16 {
            q.push(1.0, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(order, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn seeded_ties_are_replayable() {
        let run = |seed: u64| -> Vec<u32> {
            let mut q = EventQueue::seeded(seed);
            for i in 0..16u32 {
                q.push(1.0, i);
            }
            std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds should shuffle ties");
        assert_ne!(
            run(7),
            (0..16).collect::<Vec<_>>(),
            "seeded mode should not degenerate to FIFO"
        );
    }

    #[test]
    #[should_panic(expected = "must not be NaN")]
    fn rejects_nan_times() {
        let mut q = EventQueue::new();
        q.push(f64::NAN, ());
    }
}
