//! Fault/preemption injection.
//!
//! Every dispatch point in the ported subsystems (`gpusim` op promotion,
//! `exec` worker op dispatch, `cluster` shard batch dispatch) consults an
//! [`Injector`] with a [`DispatchSite`] describing where execution stands and
//! receives an [`Action`] back.  The injector resolves a [`FaultPlan`] — a
//! plain, inspectable list of faults, usually derived from a seed — so every
//! chaos run is replayable bit-for-bit from `MGGCN_CHAOS_SEED`.
//!
//! Determinism rules:
//! * Sites are matched by *structural position* (gpu × per-worker dispatch
//!   index, shard × batch index), never by wall-clock or global counters, so
//!   the same plan fires at the same logical instant regardless of thread
//!   interleaving or pool width.
//! * The no-op injector is exactly side-effect free: slowdown factors are
//!   `1.0` (IEEE-exact identity under multiplication and division) and no
//!   pauses or kills fire, so fault-free runs through the hooks remain
//!   bit-identical to the legacy loops.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Mutex;

/// Default seed when `MGGCN_CHAOS_SEED` is unset.
pub const DEFAULT_CHAOS_SEED: u64 = 0xC0FFEE;

/// Seed for chaos runs: `MGGCN_CHAOS_SEED` or [`DEFAULT_CHAOS_SEED`].
pub fn chaos_seed() -> u64 {
    std::env::var("MGGCN_CHAOS_SEED")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(DEFAULT_CHAOS_SEED)
}

/// Number of seeds chaos suites should sweep: `MGGCN_CHAOS_SEEDS` or
/// `default`.  Seeds are `chaos_seed() + i` for `i in 0..count`, so a budget
/// bump widens the sweep without invalidating earlier seeds.
pub fn chaos_seed_count(default: usize) -> usize {
    std::env::var("MGGCN_CHAOS_SEEDS")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(default)
        .max(1)
}

/// A structural position at which the scheduler is about to dispatch work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchSite {
    /// The discrete-event engine is promoting op `seq` (its op id) to the
    /// running set; `(gpu, stream)` is the op's leader lane.
    SimStart { gpu: usize, stream: usize, seq: usize, collective: bool },
    /// Worker thread `gpu` is dispatching the `seq`-th entry of its
    /// (deterministic) worklist.
    ExecOp { gpu: usize, seq: usize, collective: bool },
    /// A cluster shard is dispatching its `seq`-th batch.
    BatchDispatch { shard: usize, seq: usize },
}

impl DispatchSite {
    /// The `(unit, seq)` coordinate faults are matched on.
    fn coord(&self) -> (usize, usize) {
        match *self {
            DispatchSite::SimStart { gpu, seq, .. } => (gpu, seq),
            DispatchSite::ExecOp { gpu, seq, .. } => (gpu, seq),
            DispatchSite::BatchDispatch { shard, seq } => (shard, seq),
        }
    }
}

/// What the dispatcher must do at a site.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Action {
    /// Proceed normally.
    None,
    /// The unit dies here: workers fail the run with a tagged error, the
    /// simulator never starts the op (downstream dependents stall into a
    /// bounded, labeled `Stall`).
    Kill,
    /// Preemption: the unit is descheduled for `seconds` before dispatching.
    Pause { seconds: f64 },
}

/// Kill the unit at dispatch coordinate `(gpu, seq)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Kill {
    pub gpu: usize,
    pub seq: usize,
}

/// Pause the unit for `seconds` at dispatch coordinate `(gpu, seq)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PauseAt {
    pub gpu: usize,
    pub seq: usize,
    pub seconds: f64,
}

/// Multiply effective link latency (divide bandwidth) for all comm involving
/// `gpu` by `factor` (>= 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlowLink {
    pub gpu: usize,
    pub factor: f64,
}

/// Shard `shard` (and its cache node) is lost at time `at`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardLoss {
    pub shard: usize,
    pub at: f64,
}

/// A complete, inspectable description of the faults a chaos run injects.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Seed the plan was derived from (0 for hand-built plans).
    pub seed: u64,
    pub kills: Vec<Kill>,
    pub pauses: Vec<PauseAt>,
    pub slow_links: Vec<SlowLink>,
    pub shard_loss: Vec<ShardLoss>,
}

/// Scenario classes the seeded generator knows how to produce.  Dimensions
/// describe the workload so plans land on real dispatch coordinates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Scenario {
    /// Kill one worker at a random dispatch index.
    WorkerDeath { gpus: usize, ops_per_gpu: usize },
    /// Slow the links of 1..=gpus/2+1 GPUs by 2-16x.
    SlowLink { gpus: usize },
    /// Pause 1..=3 dispatches for up to `max_pause` seconds each.
    Preemption { gpus: usize, ops_per_gpu: usize, max_pause: f64 },
    /// Lose one shard at a random time within `horizon` seconds.
    CacheLoss { shards: usize, horizon: f64 },
    /// Degrade one random node's NIC: every GPU on that node gets the same
    /// 2-16x link slowdown. Models an inter-node fabric fault on a
    /// hierarchical machine (GPU indices node-major: node `k` owns GPUs
    /// `k·gpus_per_node..(k+1)·gpus_per_node`).
    NicDegrade { nodes: usize, gpus_per_node: usize },
    /// Kill one worker while the *next* epoch's prefetch broadcasts are
    /// in flight: the dispatch index lands inside the second epoch of a
    /// fused bounded-staleness schedule (`ops_per_epoch` per GPU per
    /// epoch), where epoch e+1's stale broadcasts overlap epoch e's
    /// backward pass (DESIGN §15).
    StaleEpochKill { gpus: usize, ops_per_epoch: usize },
}

impl FaultPlan {
    /// The empty plan: injects nothing.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    pub fn is_empty(&self) -> bool {
        self.kills.is_empty()
            && self.pauses.is_empty()
            && self.slow_links.is_empty()
            && self.shard_loss.is_empty()
    }

    /// Derive a plan for `scenario` from `seed`.  Same seed + scenario ⇒
    /// same plan, always.
    pub fn seeded(seed: u64, scenario: Scenario) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut plan = FaultPlan { seed, ..FaultPlan::default() };
        match scenario {
            Scenario::WorkerDeath { gpus, ops_per_gpu } => {
                assert!(gpus > 0 && ops_per_gpu > 0);
                plan.kills
                    .push(Kill { gpu: rng.gen_range(0..gpus), seq: rng.gen_range(0..ops_per_gpu) });
            }
            Scenario::SlowLink { gpus } => {
                assert!(gpus > 0);
                let n = rng.gen_range(1..=gpus / 2 + 1);
                let mut hit = vec![false; gpus];
                for _ in 0..n {
                    let g = rng.gen_range(0..gpus);
                    if !hit[g] {
                        hit[g] = true;
                        plan.slow_links
                            .push(SlowLink { gpu: g, factor: rng.gen_range(2.0..=16.0) });
                    }
                }
            }
            Scenario::Preemption { gpus, ops_per_gpu, max_pause } => {
                assert!(gpus > 0 && ops_per_gpu > 0 && max_pause > 0.0);
                let n = rng.gen_range(1..=3usize);
                for _ in 0..n {
                    plan.pauses.push(PauseAt {
                        gpu: rng.gen_range(0..gpus),
                        seq: rng.gen_range(0..ops_per_gpu),
                        seconds: rng.gen_range(max_pause * 0.1..=max_pause),
                    });
                }
            }
            Scenario::NicDegrade { nodes, gpus_per_node } => {
                assert!(nodes > 0 && gpus_per_node > 0);
                let node = rng.gen_range(0..nodes);
                let factor = rng.gen_range(2.0..=16.0);
                for g in node * gpus_per_node..(node + 1) * gpus_per_node {
                    plan.slow_links.push(SlowLink { gpu: g, factor });
                }
            }
            Scenario::StaleEpochKill { gpus, ops_per_epoch } => {
                assert!(gpus > 0 && ops_per_epoch > 0);
                plan.kills.push(Kill {
                    gpu: rng.gen_range(0..gpus),
                    seq: ops_per_epoch + rng.gen_range(0..ops_per_epoch),
                });
            }
            Scenario::CacheLoss { shards, horizon } => {
                assert!(shards > 0 && horizon > 0.0);
                plan.shard_loss.push(ShardLoss {
                    shard: rng.gen_range(0..shards),
                    at: rng.gen_range(0.0..horizon),
                });
            }
        }
        plan
    }
}

/// Resolves a [`FaultPlan`] at dispatch sites.  Shared by reference across
/// worker threads (`Sync`); the fired log is behind a mutex.
#[derive(Debug)]
pub struct Injector {
    plan: FaultPlan,
    fired: Mutex<Vec<String>>,
}

impl Injector {
    /// The no-op injector: every hook is an exact identity.
    pub fn none() -> Self {
        Injector::new(FaultPlan::none())
    }

    pub fn new(plan: FaultPlan) -> Self {
        for s in &plan.slow_links {
            assert!(
                s.factor.is_finite() && s.factor >= 1.0,
                "slow-link factor must be >= 1, got {}",
                s.factor
            );
        }
        for p in &plan.pauses {
            assert!(
                p.seconds.is_finite() && p.seconds >= 0.0,
                "pause must be >= 0 seconds, got {}",
                p.seconds
            );
        }
        Injector { plan, fired: Mutex::new(Vec::new()) }
    }

    /// `true` if this injector can never fire anything.
    pub fn is_noop(&self) -> bool {
        self.plan.is_empty()
    }

    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Resolve the action at a dispatch site.  Kills shadow pauses at the
    /// same coordinate.
    pub fn at(&self, site: DispatchSite) -> Action {
        if self.is_noop() {
            return Action::None;
        }
        let (unit, seq) = site.coord();
        if self.plan.kills.iter().any(|k| k.gpu == unit && k.seq == seq) {
            self.log(format!("kill at {site:?}"));
            return Action::Kill;
        }
        let pause: f64 = self
            .plan
            .pauses
            .iter()
            .filter(|p| p.gpu == unit && p.seq == seq)
            .map(|p| p.seconds)
            .sum();
        if pause > 0.0 {
            self.log(format!("pause {pause}s at {site:?}"));
            return Action::Pause { seconds: pause };
        }
        Action::None
    }

    /// Combined slowdown factor for links touching `gpu` (>= 1; exactly
    /// `1.0` when nothing matches, so `bw / factor` is bit-exact).
    pub fn comm_slowdown(&self, gpu: usize) -> f64 {
        let mut factor = 1.0;
        for s in &self.plan.slow_links {
            if s.gpu == gpu {
                factor *= s.factor;
            }
        }
        factor
    }

    /// If shard `shard` is lost at or before `now`, the loss time.
    pub fn shard_down(&self, shard: usize, now: f64) -> Option<f64> {
        self.plan.shard_loss.iter().filter(|l| l.shard == shard && l.at <= now).map(|l| l.at).next()
    }

    /// Log of faults that actually fired, in firing order.
    pub fn fired(&self) -> Vec<String> {
        self.fired.lock().unwrap().clone()
    }

    fn log(&self, entry: String) {
        self.fired.lock().unwrap().push(entry);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_injector_is_exact_identity() {
        let inj = Injector::none();
        assert!(inj.is_noop());
        let site = DispatchSite::ExecOp { gpu: 0, seq: 0, collective: false };
        assert_eq!(inj.at(site), Action::None);
        // Bit-exactness of the slowdown path hinges on the factor being 1.0.
        assert_eq!(inj.comm_slowdown(3).to_bits(), 1.0f64.to_bits());
        assert_eq!(inj.shard_down(0, f64::INFINITY), None);
        assert!(inj.fired().is_empty());
    }

    #[test]
    fn stale_epoch_kill_lands_in_the_second_epoch() {
        let sc = Scenario::StaleEpochKill { gpus: 4, ops_per_epoch: 32 };
        for seed in 0..32 {
            let plan = FaultPlan::seeded(seed, sc);
            assert_eq!(plan.kills.len(), 1);
            let k = plan.kills[0];
            assert!(k.gpu < 4);
            assert!(
                (32..64).contains(&k.seq),
                "seed {seed}: kill at seq {} must land inside epoch 1, where \
                 epoch 2's prefetch broadcasts are in flight",
                k.seq
            );
            assert_eq!(plan, FaultPlan::seeded(seed, sc), "plans must replay");
        }
    }

    #[test]
    fn seeded_plans_replay() {
        let sc = Scenario::Preemption { gpus: 4, ops_per_gpu: 32, max_pause: 0.01 };
        assert_eq!(FaultPlan::seeded(42, sc), FaultPlan::seeded(42, sc));
        let mut differs = false;
        for s in 0..8 {
            if FaultPlan::seeded(s, sc) != FaultPlan::seeded(s + 1, sc) {
                differs = true;
            }
        }
        assert!(differs, "seeds should produce distinct plans");
    }

    #[test]
    fn kill_matches_structural_coordinate_only() {
        let plan = FaultPlan { kills: vec![Kill { gpu: 1, seq: 3 }], ..FaultPlan::none() };
        let inj = Injector::new(plan);
        let hit = DispatchSite::ExecOp { gpu: 1, seq: 3, collective: true };
        let miss = DispatchSite::ExecOp { gpu: 1, seq: 4, collective: true };
        assert_eq!(inj.at(hit), Action::Kill);
        assert_eq!(inj.at(miss), Action::None);
        // Sim sites share the coordinate space on purpose: the same plan can
        // drive either backend.
        let sim = DispatchSite::SimStart { gpu: 1, stream: 0, seq: 3, collective: false };
        assert_eq!(inj.at(sim), Action::Kill);
        assert_eq!(inj.fired().len(), 2);
    }

    #[test]
    fn pauses_accumulate_and_kills_shadow() {
        let plan = FaultPlan {
            kills: vec![Kill { gpu: 0, seq: 0 }],
            pauses: vec![
                PauseAt { gpu: 0, seq: 0, seconds: 0.5 },
                PauseAt { gpu: 2, seq: 1, seconds: 0.25 },
                PauseAt { gpu: 2, seq: 1, seconds: 0.25 },
            ],
            ..FaultPlan::none()
        };
        let inj = Injector::new(plan);
        assert_eq!(
            inj.at(DispatchSite::ExecOp { gpu: 0, seq: 0, collective: false }),
            Action::Kill
        );
        assert_eq!(
            inj.at(DispatchSite::ExecOp { gpu: 2, seq: 1, collective: false }),
            Action::Pause { seconds: 0.5 }
        );
    }

    #[test]
    fn slow_links_compose_and_shard_loss_respects_time() {
        let plan = FaultPlan {
            slow_links: vec![SlowLink { gpu: 0, factor: 2.0 }, SlowLink { gpu: 0, factor: 3.0 }],
            shard_loss: vec![ShardLoss { shard: 1, at: 5.0 }],
            ..FaultPlan::none()
        };
        let inj = Injector::new(plan);
        assert_eq!(inj.comm_slowdown(0), 6.0);
        assert_eq!(inj.comm_slowdown(1), 1.0);
        assert_eq!(inj.shard_down(1, 4.9), None);
        assert_eq!(inj.shard_down(1, 5.0), Some(5.0));
        assert_eq!(inj.shard_down(0, 100.0), None);
    }

    #[test]
    fn nic_degrade_hits_exactly_one_whole_node() {
        for seed in 0..16 {
            let plan = FaultPlan::seeded(seed, Scenario::NicDegrade { nodes: 2, gpus_per_node: 4 });
            assert_eq!(plan.slow_links.len(), 4, "one full node of GPUs");
            let node = plan.slow_links[0].gpu / 4;
            for s in &plan.slow_links {
                assert_eq!(s.gpu / 4, node, "all slowed GPUs share a node");
                assert_eq!(s.factor, plan.slow_links[0].factor, "uniform NIC factor");
                assert!((2.0..=16.0).contains(&s.factor));
            }
            let gpus: Vec<usize> = plan.slow_links.iter().map(|s| s.gpu).collect();
            assert_eq!(gpus, (node * 4..(node + 1) * 4).collect::<Vec<_>>());
            assert!(plan.kills.is_empty() && plan.pauses.is_empty() && plan.shard_loss.is_empty());
        }
    }

    #[test]
    fn env_seed_helpers_have_defaults() {
        // Do not set the env vars here (tests run in one process); just check
        // the defaults are sane when unset.
        if std::env::var("MGGCN_CHAOS_SEED").is_err() {
            assert_eq!(chaos_seed(), DEFAULT_CHAOS_SEED);
        }
        if std::env::var("MGGCN_CHAOS_SEEDS").is_err() {
            assert_eq!(chaos_seed_count(3), 3);
        }
        assert!(chaos_seed_count(0) >= 1);
    }
}
