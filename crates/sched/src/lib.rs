//! Unified scheduler core.
//!
//! This crate separates *when* components run from *what* they do.  A
//! [`Component`] exposes three hooks — [`Component::dispatch`] (start any work
//! that is ready at the current instant), [`Component::next_event`] (the next
//! instant at which something it owns completes), and [`Component::advance`]
//! (move internal state to a later instant, retiring finished work) — and a
//! [`Scheduler`] drives an arbitrary set of components under a pluggable
//! [`Policy`]:
//!
//! * [`Policy::DiscreteEvent`] jumps straight to the earliest pending event,
//!   which is the behavior of the original `gpusim` engine loop, the serve
//!   batcher, and the cluster shard loop.  When a single component is driven
//!   this way the schedule it produces is *bit-identical* to the legacy
//!   hand-rolled loops: the scheduler hands the component back the exact
//!   `f64` it reported from `next_event`, and components cache the `dt` they
//!   used to compute that target so no `(t + dt) - t` float round-trip occurs.
//! * [`Policy::CycleSync`] steps time on a fixed quantum and advances every
//!   component in lockstep.  Completions are detected at grid points, so
//!   makespans are quantized up; this mode exists for lockstep debugging and
//!   for conformance tests that want a second, independently-ordered
//!   execution of the same schedule.
//!
//! Every dispatch point in the ported subsystems consults an
//! [`inject::Injector`], which resolves a seeded [`inject::FaultPlan`] into
//! actions (kill / pause / slow-link / shard-loss).  The no-op injector is
//! guaranteed side-effect free (multiplies bandwidth by exactly `1.0`, adds
//! `0.0` seconds), so fault-free runs through the hooks stay bit-identical.

#![forbid(unsafe_code)]

pub mod inject;
pub mod queue;

pub use inject::{
    chaos_seed, chaos_seed_count, Action, DispatchSite, FaultPlan, Injector, Kill, PauseAt,
    Scenario, ShardLoss, SlowLink,
};
pub use queue::EventQueue;

/// Simulated time, in seconds.  `f64` to match the rate-based engine.
pub type Time = f64;

/// How the scheduler chooses the next instant to advance to.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Policy {
    /// Jump to the earliest event reported by any component.  Exact: the
    /// reported `f64` is passed back to `advance` unchanged.
    DiscreteEvent,
    /// Advance all components in lockstep on a fixed time quantum.
    /// Completions land on grid points; intended for debugging/conformance.
    CycleSync {
        /// Step size in seconds.  Must be finite and > 0.
        quantum: Time,
    },
}

/// A schedulable unit of work with its own internal state.
///
/// Contract (upheld by [`Scheduler::run`]):
/// 1. `dispatch` is called to a fixpoint across all components before time
///    advances, so work released by one component can be picked up by another
///    at the same instant.
/// 2. `next_event(now)` is always called before the `advance(next, ..)` that
///    consumes it, with no dispatches in between; a component may therefore
///    cache rate computations (and the exact completion target) between the
///    two calls.
/// 3. `advance` is called with `next >= now`; under `DiscreteEvent`, `next`
///    is bit-equal to some component's reported `next_event`.
pub trait Component {
    /// Short label for stall diagnostics.
    fn label(&self) -> String;

    /// Start any work that is ready at `now`.  Returns `true` if anything new
    /// was dispatched (the scheduler loops dispatch to a fixpoint).
    fn dispatch(&mut self, now: Time, inj: &Injector) -> bool;

    /// The next instant at which this component retires work, or `None` if it
    /// has nothing in flight.
    fn next_event(&mut self, now: Time) -> Option<Time>;

    /// Move internal state to `next`, retiring anything that completes by
    /// then.  Returns `true` if any work was retired.
    fn advance(&mut self, next: Time, inj: &Injector) -> bool;

    /// `true` once the component has no pending or in-flight work left.
    fn is_done(&self) -> bool;

    /// Human-readable description of blocked work, used in [`Stall`] errors.
    fn stuck(&self) -> Vec<String> {
        Vec::new()
    }
}

/// Successful scheduler run.
#[derive(Debug, Clone, PartialEq)]
pub struct Outcome {
    /// Final scheduler time (max over component completion times).
    pub makespan: Time,
    /// Number of time-advancing rounds executed.
    pub rounds: usize,
}

/// The scheduler could not make progress: no component could dispatch, none
/// reported a pending event, and at least one is not done.  This is the
/// unified deadlock/stall signal; callers turn it into their legacy error
/// shape (e.g. `gpusim` panics with its historical message).
#[derive(Debug, Clone, PartialEq)]
pub struct Stall {
    /// Time at which progress stopped.
    pub at: Time,
    /// Per-component descriptions of blocked work.
    pub stuck: Vec<String>,
}

impl std::fmt::Display for Stall {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "scheduler stall at t={}: {:?}", self.at, self.stuck)
    }
}

impl std::error::Error for Stall {}

/// Drives a set of [`Component`]s to completion under a [`Policy`].
#[derive(Debug)]
pub struct Scheduler {
    policy: Policy,
    now: Time,
}

impl Scheduler {
    pub fn new(policy: Policy) -> Self {
        if let Policy::CycleSync { quantum } = policy {
            assert!(
                quantum.is_finite() && quantum > 0.0,
                "CycleSync quantum must be finite and positive, got {quantum}"
            );
        }
        Scheduler { policy, now: 0.0 }
    }

    /// Current scheduler time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Run all components to completion.
    ///
    /// Returns [`Stall`] if no component can dispatch, none has an event
    /// pending, and at least one is not done — or if a round neither advanced
    /// time nor retired work (zero-duration livelock guard).
    pub fn run(
        &mut self,
        comps: &mut [&mut dyn Component],
        inj: &Injector,
    ) -> Result<Outcome, Stall> {
        let mut rounds = 0usize;
        loop {
            // Dispatch to a fixpoint: work retired or released by one
            // component may unblock another at the same instant.
            loop {
                let mut any = false;
                for c in comps.iter_mut() {
                    any |= c.dispatch(self.now, inj);
                }
                if !any {
                    break;
                }
            }

            if comps.iter().all(|c| c.is_done()) {
                return Ok(Outcome { makespan: self.now, rounds });
            }

            // Earliest pending event across components.
            let mut eta: Option<Time> = None;
            for c in comps.iter_mut() {
                if let Some(t) = c.next_event(self.now) {
                    debug_assert!(!t.is_nan(), "component {} reported NaN event", c.label());
                    eta = Some(match eta {
                        None => t,
                        Some(e) if t < e => t,
                        Some(e) => e,
                    });
                }
            }

            let Some(eta) = eta else {
                return Err(self.stall(comps));
            };

            let next = match self.policy {
                // Hand back the reported f64 unchanged: components that
                // cached the dt behind it will recognize it bit-for-bit.
                Policy::DiscreteEvent => eta,
                Policy::CycleSync { quantum } => self.now + quantum,
            };

            let mut retired = false;
            for c in comps.iter_mut() {
                retired |= c.advance(next, inj);
            }

            // Zero-duration ops make `next == now` legal, but only if
            // something actually retired; otherwise we are livelocked.
            if next <= self.now && !retired {
                return Err(self.stall(comps));
            }
            self.now = next;
            rounds += 1;
        }
    }

    fn stall(&self, comps: &mut [&mut dyn Component]) -> Stall {
        Stall { at: self.now, stuck: comps.iter().flat_map(|c| c.stuck()).collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fixed-duration jobs on one lane, FIFO.  Mirrors the shape of the
    /// gpusim port at miniature scale.
    struct Lane {
        jobs: Vec<Time>,
        head: usize,
        running: Option<(Time, Time)>, // (started_at, ends_at)
        finished: Vec<Time>,           // completion times
    }

    impl Lane {
        fn new(jobs: Vec<Time>) -> Self {
            Lane { jobs, head: 0, running: None, finished: Vec::new() }
        }
    }

    impl Component for Lane {
        fn label(&self) -> String {
            "lane".into()
        }
        fn dispatch(&mut self, now: Time, _inj: &Injector) -> bool {
            if self.running.is_none() && self.head < self.jobs.len() {
                let dur = self.jobs[self.head];
                self.head += 1;
                self.running = Some((now, now + dur));
                true
            } else {
                false
            }
        }
        fn next_event(&mut self, _now: Time) -> Option<Time> {
            self.running.map(|(_, end)| end)
        }
        fn advance(&mut self, next: Time, _inj: &Injector) -> bool {
            if let Some((_, end)) = self.running {
                if end <= next {
                    self.running = None;
                    self.finished.push(end);
                    return true;
                }
            }
            false
        }
        fn is_done(&self) -> bool {
            self.running.is_none() && self.head >= self.jobs.len()
        }
        fn stuck(&self) -> Vec<String> {
            if self.is_done() {
                Vec::new()
            } else {
                vec![format!("lane head job {}", self.head)]
            }
        }
    }

    /// Never dispatches, never reports an event: stalls the scheduler.
    struct Wedge;
    impl Component for Wedge {
        fn label(&self) -> String {
            "wedge".into()
        }
        fn dispatch(&mut self, _now: Time, _inj: &Injector) -> bool {
            false
        }
        fn next_event(&mut self, _now: Time) -> Option<Time> {
            None
        }
        fn advance(&mut self, _next: Time, _inj: &Injector) -> bool {
            false
        }
        fn is_done(&self) -> bool {
            false
        }
        fn stuck(&self) -> Vec<String> {
            vec!["wedged".into()]
        }
    }

    #[test]
    fn discrete_event_runs_fifo_lane() {
        let inj = Injector::none();
        let mut lane = Lane::new(vec![1.0, 2.0, 0.5]);
        let mut s = Scheduler::new(Policy::DiscreteEvent);
        let out = s.run(&mut [&mut lane], &inj).unwrap();
        assert_eq!(out.makespan, 3.5);
        assert_eq!(lane.finished, vec![1.0, 3.0, 3.5]);
    }

    #[test]
    fn zero_duration_jobs_terminate() {
        let inj = Injector::none();
        let mut lane = Lane::new(vec![0.0, 0.0, 1.0]);
        let mut s = Scheduler::new(Policy::DiscreteEvent);
        let out = s.run(&mut [&mut lane], &inj).unwrap();
        assert_eq!(out.makespan, 1.0);
        assert_eq!(lane.finished.len(), 3);
    }

    #[test]
    fn two_components_interleave_deterministically() {
        let inj = Injector::none();
        let mut a = Lane::new(vec![1.0, 1.0]);
        let mut b = Lane::new(vec![0.5, 0.5, 0.5]);
        let mut s = Scheduler::new(Policy::DiscreteEvent);
        let out = s.run(&mut [&mut a, &mut b], &inj).unwrap();
        assert_eq!(out.makespan, 2.0);
        assert_eq!(a.finished, vec![1.0, 2.0]);
        assert_eq!(b.finished, vec![0.5, 1.0, 1.5]);
    }

    #[test]
    fn stall_reports_stuck_components() {
        let inj = Injector::none();
        let mut lane = Lane::new(vec![1.0]);
        let mut wedge = Wedge;
        let mut s = Scheduler::new(Policy::DiscreteEvent);
        let err = s.run(&mut [&mut lane, &mut wedge], &inj).unwrap_err();
        assert_eq!(err.at, 1.0);
        assert_eq!(err.stuck, vec!["wedged".to_string()]);
    }

    #[test]
    fn cycle_sync_quantizes_completions_up() {
        let inj = Injector::none();
        let mut lane = Lane::new(vec![1.0, 2.0, 0.5]);
        let mut s = Scheduler::new(Policy::CycleSync { quantum: 0.25 });
        let out = s.run(&mut [&mut lane], &inj).unwrap();
        // Durations align to the grid, so the makespan matches DES here.
        assert_eq!(out.makespan, 3.5);
        assert_eq!(lane.finished, vec![1.0, 3.0, 3.5]);

        // Off-grid durations round completion detection up to grid points.
        let mut lane = Lane::new(vec![0.3]);
        let mut s = Scheduler::new(Policy::CycleSync { quantum: 0.25 });
        let out = s.run(&mut [&mut lane], &inj).unwrap();
        assert_eq!(out.makespan, 0.5);
    }

    #[test]
    #[should_panic(expected = "quantum must be finite and positive")]
    fn cycle_sync_rejects_bad_quantum() {
        let _ = Scheduler::new(Policy::CycleSync { quantum: 0.0 });
    }
}
