//! Dense linear-algebra substrate for the MG-GCN reproduction.
//!
//! The paper performs its dense work (`H · W`, `HW_G · Wᵀ`, `HW_Gᵀ · H`,
//! activations, optimizer updates) with cuBLAS on row-major matrices. This
//! crate provides the equivalent CPU kernels: a row-major [`Dense`] matrix,
//! cache-blocked and Rayon-parallel GeMM in all the transpose combinations
//! the GCN forward/backward pass needs, and the elementwise kernels (ReLU,
//! AXPY, scaling) that the training loop is built from.

#![forbid(unsafe_code)]

pub mod elementwise;
pub mod gemm;
pub mod init;
pub mod matrix;

pub use elementwise::{
    add_assign, axpy, relu, relu_backward, relu_backward_merge, relu_inplace, scale,
};
pub use gemm::{gemm, gemm_a_bt, gemm_at_b, Accumulate};
pub use matrix::Dense;
