//! Row-major dense matrix.

use std::fmt;

/// A row-major dense `rows × cols` matrix of `f32`.
///
/// Row-major layout matches the paper's cuBLAS usage ("Row Major format for
/// the dense matrices", §6) and makes SpMM's per-row accumulation contiguous.
#[derive(Clone, PartialEq)]
pub struct Dense {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Dense {
    /// Create a zero-filled matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Create from an existing buffer. Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer size mismatch");
        Self { rows, cols, data }
    }

    /// Build from a closure over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Bytes of backing storage actually allocated. `resize` re-views the
    /// buffer without shrinking the allocation, so this is the matrix's
    /// memory high-watermark — what a device allocator would hold.
    pub fn capacity_bytes(&self) -> usize {
        self.data.capacity() * std::mem::size_of::<f32>()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// Reset every element to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Reshape this matrix to `rows × cols`, reusing the allocation.
    ///
    /// This is how MG-GCN's shared buffers (`HW`, `BC1`, `BC2`) serve
    /// layers of different widths: one allocation sized for the widest use,
    /// re-viewed per kernel. Newly exposed elements are zeroed; contents are
    /// otherwise unspecified (callers overwrite before reading).
    pub fn resize(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, 0.0);
    }

    /// Out-of-place transpose.
    pub fn transpose(&self) -> Dense {
        let mut t = Dense::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        t
    }

    /// Copy the rows `[start, start + n)` into a new matrix.
    pub fn row_block(&self, start: usize, n: usize) -> Dense {
        assert!(start + n <= self.rows);
        let data = self.data[start * self.cols..(start + n) * self.cols].to_vec();
        Dense { rows: n, cols: self.cols, data }
    }

    /// Frobenius norm.
    pub fn frob_norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum::<f32>().sqrt()
    }

    /// Max absolute entry — the scale a relative comparison divides by.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    /// Max absolute elementwise difference against `other`.
    pub fn max_abs_diff(&self, other: &Dense) -> f32 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data.iter().zip(&other.data).map(|(a, b)| (a - b).abs()).fold(0.0f32, f32::max)
    }
}

impl Default for Dense {
    /// An empty `0 × 0` matrix — the placeholder `std::mem::take` leaves
    /// behind when a buffer is temporarily moved out for a split borrow.
    fn default() -> Self {
        Dense::zeros(0, 0)
    }
}

impl fmt::Debug for Dense {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Dense({}x{})", self.rows, self.cols)?;
        if self.rows * self.cols <= 64 {
            for r in 0..self.rows {
                write!(f, "\n  {:?}", self.row(r))?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_shape_and_content() {
        let m = Dense::zeros(3, 4);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn from_fn_indexing() {
        let m = Dense::from_fn(2, 3, |r, c| (r * 10 + c) as f32);
        assert_eq!(m.get(0, 0), 0.0);
        assert_eq!(m.get(0, 2), 2.0);
        assert_eq!(m.get(1, 1), 11.0);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Dense::from_fn(3, 5, |r, c| (r * 5 + c) as f32);
        let tt = m.transpose().transpose();
        assert_eq!(m, tt);
    }

    #[test]
    fn transpose_values() {
        let m = Dense::from_fn(2, 3, |r, c| (r * 3 + c) as f32);
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t.get(2, 1), m.get(1, 2));
    }

    #[test]
    fn row_block_copies_rows() {
        let m = Dense::from_fn(4, 2, |r, c| (r * 2 + c) as f32);
        let b = m.row_block(1, 2);
        assert_eq!(b.rows(), 2);
        assert_eq!(b.row(0), m.row(1));
        assert_eq!(b.row(1), m.row(2));
    }

    #[test]
    fn max_abs_picks_the_largest_magnitude() {
        let m = Dense::from_vec(2, 2, vec![1.0, -7.5, 3.0, 0.0]);
        assert_eq!(m.max_abs(), 7.5);
        assert_eq!(Dense::zeros(2, 3).max_abs(), 0.0);
    }

    #[test]
    fn frob_norm_simple() {
        let m = Dense::from_vec(1, 2, vec![3.0, 4.0]);
        assert!((m.frob_norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "buffer size mismatch")]
    fn from_vec_wrong_size_panics() {
        let _ = Dense::from_vec(2, 2, vec![0.0; 3]);
    }

    #[test]
    fn resize_reuses_allocation() {
        let mut m = Dense::zeros(10, 8);
        let cap_before = m.as_slice().len();
        m.resize(4, 5);
        assert_eq!((m.rows(), m.cols()), (4, 5));
        assert_eq!(m.len(), 20);
        m.resize(10, 8);
        assert_eq!(m.len(), cap_before);
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn max_abs_diff_detects_change() {
        let a = Dense::zeros(2, 2);
        let mut b = Dense::zeros(2, 2);
        b.set(1, 1, 0.5);
        assert_eq!(a.max_abs_diff(&b), 0.5);
    }
}
