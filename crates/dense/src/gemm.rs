//! General matrix-matrix multiplication kernels (the paper's cuBLAS calls).
//!
//! The GCN forward/backward pass needs three transpose combinations
//! (eqs. 5, 10, 11 of the paper):
//!
//! * `C = H · W`        — [`gemm`]
//! * `C = HW_G · Wᵀ`    — [`gemm_a_bt`]
//! * `C = HW_Gᵀ · H`    — [`gemm_at_b`] (weight gradient)
//!
//! All kernels parallelize over row blocks of the output with Rayon and use
//! an i-k-j loop order so the inner loop is a contiguous AXPY over the output
//! row, which auto-vectorizes well.

use crate::matrix::Dense;
use rayon::prelude::*;

/// Whether a GeMM overwrites its output (`beta = 0`) or accumulates into it
/// (`beta = 1`), mirroring the BLAS `beta` parameter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Accumulate {
    /// `C = A · B`
    Overwrite,
    /// `C += A · B`
    Add,
}

/// Rows per parallel task. Small enough to load-balance, large enough to
/// amortize task overhead.
const ROW_BLOCK: usize = 64;

/// `C = alpha_op(A · B)` with `A: m×k`, `B: k×n`, `C: m×n`.
pub fn gemm(a: &Dense, b: &Dense, c: &mut Dense, acc: Accumulate) {
    assert_eq!(a.cols(), b.rows(), "gemm inner dimension mismatch");
    assert_eq!(a.rows(), c.rows(), "gemm output rows mismatch");
    assert_eq!(b.cols(), c.cols(), "gemm output cols mismatch");
    let (k, n) = (a.cols(), b.cols());
    let b_data = b.as_slice();
    let a_data = a.as_slice();
    c.as_mut_slice().par_chunks_mut(ROW_BLOCK * n).enumerate().for_each(|(blk, c_chunk)| {
        let row0 = blk * ROW_BLOCK;
        for (i, c_row) in c_chunk.chunks_mut(n).enumerate() {
            let a_row = &a_data[(row0 + i) * k..(row0 + i + 1) * k];
            if acc == Accumulate::Overwrite {
                c_row.fill(0.0);
            }
            for (kk, &aik) in a_row.iter().enumerate() {
                if aik == 0.0 {
                    continue;
                }
                let b_row = &b_data[kk * n..(kk + 1) * n];
                for (cj, bj) in c_row.iter_mut().zip(b_row) {
                    *cj += aik * bj;
                }
            }
        }
    });
}

/// `C = Aᵀ · B` with `A: k×m`, `B: k×n`, `C: m×n`.
///
/// Used for the weight gradient `W_G = HW_Gᵀ · H` (paper eq. 10). The output
/// is small (`d×d`), so we parallelize over the reduction dimension `k` with
/// per-thread partial outputs and a tree reduce.
pub fn gemm_at_b(a: &Dense, b: &Dense, c: &mut Dense, acc: Accumulate) {
    assert_eq!(a.rows(), b.rows(), "gemm_at_b reduction dimension mismatch");
    assert_eq!(a.cols(), c.rows(), "gemm_at_b output rows mismatch");
    assert_eq!(b.cols(), c.cols(), "gemm_at_b output cols mismatch");
    let (k, m, n) = (a.rows(), a.cols(), b.cols());
    let a_data = a.as_slice();
    let b_data = b.as_slice();

    let partial = (0..k)
        .into_par_iter()
        .fold(
            || vec![0.0f32; m * n],
            |mut acc_buf, kk| {
                let a_row = &a_data[kk * m..(kk + 1) * m];
                let b_row = &b_data[kk * n..(kk + 1) * n];
                for (i, &aki) in a_row.iter().enumerate() {
                    if aki == 0.0 {
                        continue;
                    }
                    let c_row = &mut acc_buf[i * n..(i + 1) * n];
                    for (cj, bj) in c_row.iter_mut().zip(b_row) {
                        *cj += aki * bj;
                    }
                }
                acc_buf
            },
        )
        .reduce(
            || vec![0.0f32; m * n],
            |mut x, y| {
                for (a, b) in x.iter_mut().zip(y) {
                    *a += b;
                }
                x
            },
        );

    let c_slice = c.as_mut_slice();
    match acc {
        Accumulate::Overwrite => c_slice.copy_from_slice(&partial),
        Accumulate::Add => {
            for (ci, pi) in c_slice.iter_mut().zip(partial) {
                *ci += pi;
            }
        }
    }
}

/// `C = A · Bᵀ` with `A: m×k`, `B: n×k`, `C: m×n`.
///
/// Used for the input gradient `H_G = HW_G · Wᵀ` (paper eq. 11). `B` (the
/// weight matrix) is small, so a dot-product inner kernel is fine.
pub fn gemm_a_bt(a: &Dense, b: &Dense, c: &mut Dense, acc: Accumulate) {
    assert_eq!(a.cols(), b.cols(), "gemm_a_bt inner dimension mismatch");
    assert_eq!(a.rows(), c.rows(), "gemm_a_bt output rows mismatch");
    assert_eq!(b.rows(), c.cols(), "gemm_a_bt output cols mismatch");
    let (k, n) = (a.cols(), b.rows());
    let a_data = a.as_slice();
    let b_data = b.as_slice();
    c.as_mut_slice().par_chunks_mut(ROW_BLOCK * n).enumerate().for_each(|(blk, c_chunk)| {
        let row0 = blk * ROW_BLOCK;
        for (i, c_row) in c_chunk.chunks_mut(n).enumerate() {
            let a_row = &a_data[(row0 + i) * k..(row0 + i + 1) * k];
            for (j, cj) in c_row.iter_mut().enumerate() {
                let b_row = &b_data[j * k..(j + 1) * k];
                let dot: f32 = a_row.iter().zip(b_row).map(|(x, y)| x * y).sum();
                match acc {
                    Accumulate::Overwrite => *cj = dot,
                    Accumulate::Add => *cj += dot,
                }
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &Dense, b: &Dense) -> Dense {
        let mut c = Dense::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut s = 0.0;
                for kk in 0..a.cols() {
                    s += a.get(i, kk) * b.get(kk, j);
                }
                c.set(i, j, s);
            }
        }
        c
    }

    fn arange(rows: usize, cols: usize, scale: f32) -> Dense {
        Dense::from_fn(rows, cols, |r, c| ((r * cols + c) as f32).sin() * scale)
    }

    #[test]
    fn gemm_matches_naive() {
        let a = arange(7, 5, 1.0);
        let b = arange(5, 9, 0.5);
        let mut c = Dense::zeros(7, 9);
        gemm(&a, &b, &mut c, Accumulate::Overwrite);
        assert!(c.max_abs_diff(&naive(&a, &b)) < 1e-4);
    }

    #[test]
    fn gemm_accumulate_adds() {
        let a = arange(4, 3, 1.0);
        let b = arange(3, 4, 1.0);
        let mut c = Dense::from_fn(4, 4, |_, _| 1.0);
        gemm(&a, &b, &mut c, Accumulate::Add);
        let mut expect = naive(&a, &b);
        for x in expect.as_mut_slice() {
            *x += 1.0;
        }
        assert!(c.max_abs_diff(&expect) < 1e-4);
    }

    #[test]
    fn gemm_at_b_matches_naive_transpose() {
        let a = arange(6, 4, 1.0); // k=6, m=4
        let b = arange(6, 3, 1.0); // k=6, n=3
        let mut c = Dense::zeros(4, 3);
        gemm_at_b(&a, &b, &mut c, Accumulate::Overwrite);
        assert!(c.max_abs_diff(&naive(&a.transpose(), &b)) < 1e-4);
    }

    #[test]
    fn gemm_a_bt_matches_naive_transpose() {
        let a = arange(5, 4, 1.0); // m=5, k=4
        let b = arange(6, 4, 1.0); // n=6, k=4
        let mut c = Dense::zeros(5, 6);
        gemm_a_bt(&a, &b, &mut c, Accumulate::Overwrite);
        assert!(c.max_abs_diff(&naive(&a, &b.transpose())) < 1e-4);
    }

    #[test]
    fn gemm_large_parallel_path() {
        // Exceed ROW_BLOCK so multiple parallel chunks are exercised.
        let a = arange(200, 17, 1.0);
        let b = arange(17, 13, 1.0);
        let mut c = Dense::zeros(200, 13);
        gemm(&a, &b, &mut c, Accumulate::Overwrite);
        assert!(c.max_abs_diff(&naive(&a, &b)) < 1e-3);
    }

    #[test]
    fn gemm_at_b_accumulates() {
        let a = arange(6, 2, 1.0);
        let b = arange(6, 2, 1.0);
        let mut c = Dense::from_fn(2, 2, |_, _| 2.0);
        gemm_at_b(&a, &b, &mut c, Accumulate::Add);
        let mut expect = naive(&a.transpose(), &b);
        for x in expect.as_mut_slice() {
            *x += 2.0;
        }
        assert!(c.max_abs_diff(&expect) < 1e-4);
    }
}
