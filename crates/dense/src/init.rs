//! Weight initialization.

use crate::matrix::Dense;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Glorot/Xavier uniform initialization, the standard for GCN weights
/// (used by both the Kipf & Welling reference and DGL).
pub fn glorot_uniform(rows: usize, cols: usize, rng: &mut SmallRng) -> Dense {
    let limit = (6.0 / (rows + cols) as f64).sqrt() as f32;
    let data = (0..rows * cols).map(|_| rng.gen_range(-limit..limit)).collect();
    Dense::from_vec(rows, cols, data)
}

/// Deterministic Glorot init from a seed; every virtual GPU seeds identically
/// so replicated weights start (and stay) bit-identical, as in the paper
/// where `W` is the only replicated state.
pub fn glorot_seeded(rows: usize, cols: usize, seed: u64) -> Dense {
    let mut rng = SmallRng::seed_from_u64(seed);
    glorot_uniform(rows, cols, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn glorot_within_limits() {
        let w = glorot_seeded(64, 32, 7);
        let limit = (6.0 / 96.0f64).sqrt() as f32;
        assert!(w.as_slice().iter().all(|&x| x.abs() <= limit));
    }

    #[test]
    fn glorot_seeded_is_deterministic() {
        let a = glorot_seeded(8, 8, 42);
        let b = glorot_seeded(8, 8, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn glorot_different_seeds_differ() {
        let a = glorot_seeded(8, 8, 1);
        let b = glorot_seeded(8, 8, 2);
        assert!(a.max_abs_diff(&b) > 0.0);
    }
}
