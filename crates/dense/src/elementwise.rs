//! Elementwise kernels: activation functions and vector updates.
//!
//! These are the paper's "Activation" and part of its "Adam" runtime
//! categories (Fig 5). All kernels are Rayon-parallel over contiguous chunks.

use rayon::prelude::*;

/// Minimum slice length before a kernel bothers going parallel.
const PAR_THRESHOLD: usize = 1 << 14;

/// `out[i] = max(in[i], 0)` — the paper's σ (eq. 7, ReLU).
///
/// Writing to a separate output supports the shared-buffer scheme where the
/// SpMM result and the activation output live in the same `AHW` buffer (the
/// call then takes the same slice for both via [`relu_inplace`]).
pub fn relu(input: &[f32], out: &mut [f32]) {
    assert_eq!(input.len(), out.len());
    if input.len() < PAR_THRESHOLD {
        for (o, &x) in out.iter_mut().zip(input) {
            *o = x.max(0.0);
        }
    } else {
        out.par_iter_mut().zip(input.par_iter()).for_each(|(o, &x)| *o = x.max(0.0));
    }
}

/// In-place ReLU, used when input and output share a buffer (paper eq. 18).
pub fn relu_inplace(buf: &mut [f32]) {
    if buf.len() < PAR_THRESHOLD {
        for x in buf.iter_mut() {
            *x = x.max(0.0);
        }
    } else {
        buf.par_iter_mut().for_each(|x| *x = x.max(0.0));
    }
}

/// ReLU backward: `out[i] = grad[i] * (pre_act[i] > 0)` (paper eq. 8, σ′).
///
/// `pre_act` here is the *post*-activation value, which for ReLU has the
/// same sign pattern as the pre-activation — this is exactly the trick that
/// lets the paper keep only the shared `AHW` buffer alive.
pub fn relu_backward(grad: &[f32], act: &[f32], out: &mut [f32]) {
    assert_eq!(grad.len(), act.len());
    assert_eq!(grad.len(), out.len());
    if grad.len() < PAR_THRESHOLD {
        for ((o, &g), &a) in out.iter_mut().zip(grad).zip(act) {
            *o = if a > 0.0 { g } else { 0.0 };
        }
    } else {
        out.par_iter_mut()
            .zip(grad.par_iter())
            .zip(act.par_iter())
            .for_each(|((o, &g), &a)| *o = if a > 0.0 { g } else { 0.0 });
    }
}

/// ReLU backward writing the masked gradient over the activation buffer:
/// `act_out[i] = if act_out[i] > 0 { grad[i] } else { 0 }`.
///
/// This is the §4.2 buffer-reuse form: the layer's saved activation and the
/// resulting `AHW_G` share one buffer (paper eq. 19), so the mask value is
/// consumed in the same store that replaces it.
pub fn relu_backward_merge(grad: &[f32], act_out: &mut [f32]) {
    assert_eq!(grad.len(), act_out.len());
    if grad.len() < PAR_THRESHOLD {
        for (a, &g) in act_out.iter_mut().zip(grad) {
            *a = if *a > 0.0 { g } else { 0.0 };
        }
    } else {
        act_out
            .par_iter_mut()
            .zip(grad.par_iter())
            .for_each(|(a, &g)| *a = if *a > 0.0 { g } else { 0.0 });
    }
}

/// `y += alpha * x`.
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len());
    if x.len() < PAR_THRESHOLD {
        for (yi, &xi) in y.iter_mut().zip(x) {
            *yi += alpha * xi;
        }
    } else {
        y.par_iter_mut().zip(x.par_iter()).for_each(|(yi, &xi)| *yi += alpha * xi);
    }
}

/// `y += x`.
pub fn add_assign(x: &[f32], y: &mut [f32]) {
    axpy(1.0, x, y);
}

/// `x *= alpha`.
pub fn scale(alpha: f32, x: &mut [f32]) {
    if x.len() < PAR_THRESHOLD {
        for xi in x.iter_mut() {
            *xi *= alpha;
        }
    } else {
        x.par_iter_mut().for_each(|xi| *xi *= alpha);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let input = [-1.0, 0.0, 2.5, -0.1];
        let mut out = [9.0; 4];
        relu(&input, &mut out);
        assert_eq!(out, [0.0, 0.0, 2.5, 0.0]);
    }

    #[test]
    fn relu_inplace_matches_relu() {
        let mut a = vec![-2.0, 3.0, -0.5, 7.0];
        let mut b = vec![0.0; 4];
        relu(&a.clone(), &mut b);
        relu_inplace(&mut a);
        assert_eq!(a, b);
    }

    #[test]
    fn relu_backward_masks_gradient() {
        let grad = [1.0, 2.0, 3.0];
        let act = [0.5, 0.0, -1.0];
        let mut out = [0.0; 3];
        relu_backward(&grad, &act, &mut out);
        assert_eq!(out, [1.0, 0.0, 0.0]);
    }

    #[test]
    fn relu_backward_merge_matches_separate() {
        let grad = [1.0, 2.0, 3.0, 4.0];
        let act = [0.5f32, -1.0, 0.0, 2.0];
        let mut merged = act;
        relu_backward_merge(&grad, &mut merged);
        let mut separate = [0.0; 4];
        relu_backward(&grad, &act, &mut separate);
        assert_eq!(merged, separate);
    }

    #[test]
    fn axpy_accumulates() {
        let x = [1.0, 2.0];
        let mut y = [10.0, 20.0];
        axpy(0.5, &x, &mut y);
        assert_eq!(y, [10.5, 21.0]);
    }

    #[test]
    fn scale_multiplies() {
        let mut x = [2.0, -4.0];
        scale(0.25, &mut x);
        assert_eq!(x, [0.5, -1.0]);
    }

    #[test]
    fn parallel_path_matches_serial() {
        let n = PAR_THRESHOLD + 17;
        let input: Vec<f32> = (0..n).map(|i| (i as f32).sin()).collect();
        let mut par_out = vec![0.0; n];
        relu(&input, &mut par_out);
        for (o, &x) in par_out.iter().zip(&input) {
            assert_eq!(*o, x.max(0.0));
        }
    }
}
