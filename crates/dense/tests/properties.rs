//! Property-based tests for the dense kernels: GeMM identities across all
//! transpose variants, elementwise algebra, and buffer-resize semantics.

use mggcn_dense::{
    axpy, gemm, gemm_a_bt, gemm_at_b, relu, relu_backward, relu_backward_merge, relu_inplace,
    scale, Accumulate, Dense,
};
use proptest::prelude::*;

fn matrix(max_r: usize, max_c: usize) -> impl Strategy<Value = Dense> {
    (1..=max_r, 1..=max_c).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-5.0f32..5.0, r * c)
            .prop_map(move |data| Dense::from_vec(r, c, data))
    })
}

fn naive(a: &Dense, b: &Dense) -> Dense {
    let mut out = Dense::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for j in 0..b.cols() {
            let mut s = 0.0f64;
            for k in 0..a.cols() {
                s += a.get(i, k) as f64 * b.get(k, j) as f64;
            }
            out.set(i, j, s as f32);
        }
    }
    out
}

proptest! {
    #[test]
    fn gemm_matches_f64_oracle(a in matrix(12, 10), b_cols in 1usize..9, seed in 0u64..50) {
        let b = Dense::from_fn(a.cols(), b_cols, |r, c| ((r * 7 + c + seed as usize) as f32).sin());
        let mut fast = Dense::zeros(a.rows(), b_cols);
        gemm(&a, &b, &mut fast, Accumulate::Overwrite);
        prop_assert!(fast.max_abs_diff(&naive(&a, &b)) < 1e-3);
    }

    #[test]
    fn gemm_at_b_equals_explicit_transpose(a in matrix(10, 8), n in 1usize..7) {
        let b = Dense::from_fn(a.rows(), n, |r, c| ((r + 2 * c) as f32).cos());
        let mut fast = Dense::zeros(a.cols(), n);
        gemm_at_b(&a, &b, &mut fast, Accumulate::Overwrite);
        prop_assert!(fast.max_abs_diff(&naive(&a.transpose(), &b)) < 1e-3);
    }

    #[test]
    fn gemm_a_bt_equals_explicit_transpose(a in matrix(10, 8), n in 1usize..7) {
        let b = Dense::from_fn(n, a.cols(), |r, c| ((3 * r + c) as f32).sin());
        let mut fast = Dense::zeros(a.rows(), n);
        gemm_a_bt(&a, &b, &mut fast, Accumulate::Overwrite);
        prop_assert!(fast.max_abs_diff(&naive(&a, &b.transpose())) < 1e-3);
    }

    #[test]
    fn accumulate_equals_two_overwrites_summed(a in matrix(8, 6), b_cols in 1usize..6) {
        let b = Dense::from_fn(a.cols(), b_cols, |r, c| (r as f32 - c as f32) * 0.3);
        let mut acc = Dense::zeros(a.rows(), b_cols);
        gemm(&a, &b, &mut acc, Accumulate::Overwrite);
        gemm(&a, &b, &mut acc, Accumulate::Add);
        let mut once = Dense::zeros(a.rows(), b_cols);
        gemm(&a, &b, &mut once, Accumulate::Overwrite);
        for x in once.as_mut_slice() {
            *x *= 2.0;
        }
        prop_assert!(acc.max_abs_diff(&once) < 1e-3);
    }

    #[test]
    fn transpose_involution(a in matrix(12, 12)) {
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn relu_idempotent(v in proptest::collection::vec(-10.0f32..10.0, 1..200)) {
        let mut once = vec![0.0; v.len()];
        relu(&v, &mut once);
        let mut twice = once.clone();
        relu_inplace(&mut twice);
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn relu_backward_merge_equals_separate(
        grad in proptest::collection::vec(-5.0f32..5.0, 1..100),
        seed in 0u64..50,
    ) {
        let act: Vec<f32> = (0..grad.len()).map(|i| ((i as u64 + seed) as f32 * 0.7).sin()).collect();
        let mut merged = act.clone();
        relu_backward_merge(&grad, &mut merged);
        let mut separate = vec![0.0; grad.len()];
        relu_backward(&grad, &act, &mut separate);
        prop_assert_eq!(merged, separate);
    }

    #[test]
    fn axpy_then_negate_roundtrips(
        x in proptest::collection::vec(-5.0f32..5.0, 1..100),
        alpha in -3.0f32..3.0,
    ) {
        let y0: Vec<f32> = x.iter().map(|v| v * 2.0 + 1.0).collect();
        let mut y = y0.clone();
        axpy(alpha, &x, &mut y);
        axpy(-alpha, &x, &mut y);
        for (after, before) in y.iter().zip(&y0) {
            prop_assert!((after - before).abs() < 1e-4);
        }
    }

    #[test]
    fn scale_composes_multiplicatively(
        mut x in proptest::collection::vec(-5.0f32..5.0, 1..100),
        a in 0.1f32..2.0,
        b in 0.1f32..2.0,
    ) {
        let orig = x.clone();
        scale(a, &mut x);
        scale(b, &mut x);
        for (after, before) in x.iter().zip(&orig) {
            prop_assert!((after - before * a * b).abs() < 1e-3);
        }
    }

    #[test]
    fn resize_total_matches_shape(r1 in 1usize..20, c1 in 1usize..20, r2 in 1usize..20, c2 in 1usize..20) {
        let mut m = Dense::zeros(r1, c1);
        m.resize(r2, c2);
        prop_assert_eq!(m.rows(), r2);
        prop_assert_eq!(m.cols(), c2);
        prop_assert_eq!(m.len(), r2 * c2);
    }

    #[test]
    fn row_block_matches_rows(a in matrix(12, 6), frac in 0.0f64..1.0) {
        let start = ((a.rows() - 1) as f64 * frac) as usize;
        let n = a.rows() - start;
        let b = a.row_block(start, n);
        for i in 0..n {
            prop_assert_eq!(b.row(i), a.row(start + i));
        }
    }
}
