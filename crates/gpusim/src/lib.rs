//! A virtual multi-GPU machine for the MG-GCN reproduction.
//!
//! The paper runs on NVIDIA DGX-1 (8× V100, hybrid-cube-mesh NVLink) and
//! DGX-A100 (8× A100, NVSwitch). This crate replaces that hardware with a
//! faithful *model* of it:
//!
//! * [`specs`] — GPU and machine descriptions, including the NVLink
//!   topologies whose link-count arithmetic drives the paper's §5.1
//!   1D-vs-1.5D analysis;
//! * [`memory`] — per-device memory accounting with hard OOM, reproducing
//!   the "Out of Memory" cells of Figs 5, 7, 10, 13 and Table 3;
//! * [`engine`] — CUDA-like streams/events and a rate-based discrete-event
//!   simulator in which communication steals memory bandwidth from
//!   concurrent memory-bound kernels (the §6.3 overlap penalty);
//! * [`model`] — roofline cost models for SpMM, GeMM, elementwise kernels,
//!   Adam, the loss layer, and collectives;
//! * [`timeline`] — per-op span recording and the per-category aggregations
//!   behind Figs 5, 6 and 8;
//! * [`report`] — nvprof-style profiles (the §4 bottleneck methodology);
//! * [`trace`] — Chrome-trace export for interactive timeline inspection.
//!
//! Kernels may carry *bodies* (closures over a user context) that execute in
//! simulated-completion order, so the same schedule that is timed can also
//! compute real numerics.

//! # Example
//!
//! ```
//! use mggcn_gpusim::engine::OpDesc;
//! use mggcn_gpusim::{Category, MachineSpec, Schedule, Work};
//!
//! // A kernel on GPU 0 overlapped with a broadcast to GPU 1. Bodies take
//! // the context by shared reference (they are `Send`, so the threaded
//! // backend can run them on workers); use interior mutability to write.
//! use std::sync::Mutex;
//! let mut sched: Schedule<Mutex<Vec<&str>>> = Schedule::new(MachineSpec::dgx_a100());
//! let k = sched.launch(
//!     0, 0,
//!     Work::Compute { flops: 1.0e12, bytes: 1.0e9 },
//!     OpDesc::new(Category::SpMM, "spmm"),
//!     &[],
//!     Some(Box::new(|log: &Mutex<Vec<&str>>| log.lock().unwrap().push("kernel ran"))),
//! );
//! sched.collective(
//!     &[(0, 1), (1, 1)],
//!     1.0e8,
//!     300.0e9,
//!     OpDesc::new(Category::Comm, "bcast"),
//!     &[k], // broadcast waits on the kernel
//!     None,
//! );
//! let log = Mutex::new(Vec::new());
//! let report = sched.run(&log);
//! assert_eq!(*log.lock().unwrap(), vec!["kernel ran"]);
//! assert!(report.makespan > 0.0);
//! assert_eq!(report.timeline.spans.len(), 3); // kernel + 2 collective lanes
//! ```

#![forbid(unsafe_code)]

pub use mggcn_sched as sched;

pub mod effects;
pub mod engine;
pub mod memory;
pub mod model;
pub mod report;
pub mod shadow;
pub mod specs;
pub mod timeline;
pub mod trace;

pub use effects::{BufId, Effects, StaleRead};
pub use engine::{OpId, OpInfo, RunReport, Schedule, SimOutcome, Work};
pub use memory::{MemoryTracker, OomError};
pub use model::CostModel;
pub use report::{LatencyStats, Profile};
pub use shadow::{ActualEffects, EffectRecorder};
pub use specs::{GpuSpec, Interconnect, MachineSpec};
pub use timeline::{Category, Span, Timeline};
