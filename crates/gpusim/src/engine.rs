//! CUDA-like scheduling and a rate-based discrete-event simulator.
//!
//! A [`Schedule`] is built the way an MG-GCN epoch is issued on real
//! hardware: kernels are launched onto per-GPU *streams* (stream 0 compute,
//! stream 1 communication, per §4.3), collectives rendezvous across GPUs,
//! and cross-stream dependencies are expressed by waiting on a previous
//! op's completion (CUDA events). [`Schedule::run`] then plays the whole
//! DAG forward in simulated time.
//!
//! The simulator is *rate-based*: every running op drains work dimensions
//! (seconds, FLOPs, bytes) at rates set by its GPU, and those rates are
//! recomputed whenever anything starts or finishes. Crucially, an active
//! collective drains its link bandwidth **out of its GPUs' memory
//! bandwidth**, so a memory-bound SpMM overlapped with a broadcast slows
//! down — the effect the paper measures in §6.3 ("communication ... takes
//! up some of the global memory bandwidth").
//!
//! Ops may carry a *body*: a closure over a caller-supplied context that
//! executes when the op completes in simulated time. Completion order is a
//! topological order of the dependency DAG, so bodies compute real numerics
//! under exactly the schedule being timed — and a schedule missing a
//! double-buffer WAR dependency will corrupt real data the same way real
//! hardware would.

use crate::effects::Effects;
use crate::specs::MachineSpec;
use crate::timeline::{Category, Span, Timeline};
use mggcn_sched::{Action, Component, DispatchSite, Injector, Policy, Scheduler, Stall};
use std::collections::BTreeMap;

/// Identifier of a launched op; also usable as a dependency handle.
pub type OpId = usize;

/// The work an op represents.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Work {
    /// A kernel with a FLOP count and a DRAM traffic estimate; its duration
    /// is `max(flops / flop_rate, bytes / available_mem_bw)` (roofline).
    Compute { flops: f64, bytes: f64 },
    /// A data transfer at a fixed link bandwidth (bytes/second).
    Comm { bytes: f64, bw: f64 },
    /// A fixed-duration op (host-side work, latency stubs).
    Fixed { seconds: f64 },
}

/// Descriptive metadata recorded into the timeline.
#[derive(Clone, Copy, Debug)]
pub struct OpDesc {
    pub category: Category,
    pub label: &'static str,
    pub stage: Option<usize>,
    /// Training epoch for fused multi-epoch (bounded staleness) schedules.
    /// `None` for the classic one-epoch schedules; the analyzer's
    /// cross-epoch pass and per-epoch trace accounting key off this.
    pub epoch: Option<usize>,
}

impl OpDesc {
    pub fn new(category: Category, label: &'static str) -> Self {
        Self { category, label, stage: None, epoch: None }
    }

    pub fn staged(category: Category, label: &'static str, stage: usize) -> Self {
        Self { category, label, stage: Some(stage), epoch: None }
    }

    /// Builder: tag this op with the training epoch it belongs to.
    pub fn in_epoch(mut self, epoch: usize) -> Self {
        self.epoch = Some(epoch);
        self
    }
}

/// An op's real-execution payload. Bodies take the context by shared
/// reference (interior mutability inside `Ctx` scopes writes to the GPU
/// being computed) and are `Send`, so the threaded executor
/// (`mggcn-exec`) can run them on worker threads; the simulated path
/// runs them on the calling thread in completion order.
pub type Body<Ctx> = Box<dyn FnOnce(&Ctx) + Send>;

struct Op<Ctx> {
    desc: OpDesc,
    work: Work,
    /// `(gpu, stream)` lanes this op occupies — one for kernels, all
    /// participants for collectives.
    lanes: Vec<(usize, usize)>,
    waits: Vec<OpId>,
    /// Declared buffer footprint (metadata; see [`crate::effects`]).
    effects: Effects,
    body: Option<Body<Ctx>>,
}

/// One recorded op, surrendered by [`Schedule::into_records`] for real
/// (threaded) execution outside the simulator.
pub struct OpRecord<Ctx> {
    pub desc: OpDesc,
    pub work: Work,
    pub lanes: Vec<(usize, usize)>,
    pub waits: Vec<OpId>,
    pub body: Option<Body<Ctx>>,
}

/// Borrowed view of one recorded op's metadata — everything a static
/// analysis needs (`mggcn-analyze` consumes these), without the body.
pub struct OpInfo<'a> {
    pub id: OpId,
    pub desc: OpDesc,
    pub work: Work,
    pub lanes: &'a [(usize, usize)],
    pub waits: &'a [OpId],
    pub effects: &'a Effects,
}

/// Result of timing a schedule without running bodies: the run report
/// plus the deterministic completion order of all ops — a topological
/// linearization of the dependency DAG that respects every lane FIFO,
/// which is exactly the per-worker execution order the threaded backend
/// replays.
pub struct SimOutcome {
    pub report: RunReport,
    pub completion_order: Vec<OpId>,
}

/// Result of running a schedule.
#[derive(Debug)]
pub struct RunReport {
    /// Simulated end-to-end time in seconds.
    pub makespan: f64,
    pub timeline: Timeline,
    pub ops_executed: usize,
}

/// A recorded multi-GPU schedule, generic over the real-execution context.
pub struct Schedule<Ctx> {
    machine: MachineSpec,
    ops: Vec<Op<Ctx>>,
    queues: BTreeMap<(usize, usize), Vec<OpId>>,
    /// Fixed per-op launch overhead in seconds (kernel-launch cost; larger
    /// for framework baselines).
    pub launch_overhead: f64,
}

impl<Ctx> Schedule<Ctx> {
    pub fn new(machine: MachineSpec) -> Self {
        Self { machine, ops: Vec::new(), queues: BTreeMap::new(), launch_overhead: 5.0e-6 }
    }

    pub fn machine(&self) -> &MachineSpec {
        &self.machine
    }

    /// Launch a kernel on `(gpu, stream)` after `waits` complete (in
    /// addition to the implicit in-order dependency on the same stream).
    pub fn launch(
        &mut self,
        gpu: usize,
        stream: usize,
        work: Work,
        desc: OpDesc,
        waits: &[OpId],
        body: Option<Body<Ctx>>,
    ) -> OpId {
        self.launch_fx(gpu, stream, work, desc, waits, Effects::none(), body)
    }

    /// [`Schedule::launch`] with a declared buffer footprint.
    #[allow(clippy::too_many_arguments)]
    pub fn launch_fx(
        &mut self,
        gpu: usize,
        stream: usize,
        work: Work,
        desc: OpDesc,
        waits: &[OpId],
        effects: Effects,
        body: Option<Body<Ctx>>,
    ) -> OpId {
        assert!(gpu < self.machine.gpu_count(), "gpu index out of range");
        let id = self.ops.len();
        assert!(
            !waits.contains(&id),
            "op {id} ({}) waits on itself — it could never start",
            desc.label
        );
        self.ops.push(Op {
            desc,
            work,
            lanes: vec![(gpu, stream)],
            waits: waits.to_vec(),
            effects,
            body,
        });
        self.queues.entry((gpu, stream)).or_default().push(id);
        id
    }

    /// Launch a collective occupying one lane on every participant. It
    /// starts only when it is at the head of *all* participant lanes (NCCL
    /// rendezvous semantics) and its `waits` are satisfied.
    pub fn collective(
        &mut self,
        lanes: &[(usize, usize)],
        bytes: f64,
        bw: f64,
        desc: OpDesc,
        waits: &[OpId],
        body: Option<Body<Ctx>>,
    ) -> OpId {
        self.collective_fx(lanes, bytes, bw, desc, waits, Effects::none(), body)
    }

    /// [`Schedule::collective`] with a declared buffer footprint.
    #[allow(clippy::too_many_arguments)]
    pub fn collective_fx(
        &mut self,
        lanes: &[(usize, usize)],
        bytes: f64,
        bw: f64,
        desc: OpDesc,
        waits: &[OpId],
        effects: Effects,
        body: Option<Body<Ctx>>,
    ) -> OpId {
        assert!(!lanes.is_empty(), "collective needs participants");
        let id = self.ops.len();
        assert!(
            !waits.contains(&id),
            "collective {id} ({}) waits on itself — it could never start",
            desc.label
        );
        for (i, lane) in lanes.iter().enumerate() {
            assert!(
                !lanes[..i].contains(lane),
                "collective {id} ({}) lists lane (gpu {}, stream {}) twice — \
                 one op cannot rendezvous with itself on one lane",
                desc.label,
                lane.0,
                lane.1
            );
        }
        let work =
            if bw.is_infinite() { Work::Fixed { seconds: 0.0 } } else { Work::Comm { bytes, bw } };
        self.ops.push(Op {
            desc,
            work,
            lanes: lanes.to_vec(),
            waits: waits.to_vec(),
            effects,
            body,
        });
        for &lane in lanes {
            assert!(lane.0 < self.machine.gpu_count(), "gpu index out of range");
            self.queues.entry(lane).or_default().push(id);
        }
        id
    }

    /// Number of recorded ops.
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// Borrowed metadata of every recorded op, in issue order (op id ==
    /// slice index) — the static-analysis view of the schedule.
    pub fn op_infos(&self) -> Vec<OpInfo<'_>> {
        self.ops
            .iter()
            .enumerate()
            .map(|(id, op)| OpInfo {
                id,
                desc: op.desc,
                work: op.work,
                lanes: &op.lanes,
                waits: &op.waits,
                effects: &op.effects,
            })
            .collect()
    }

    /// All explicit dependency edges as `(op, wait)` pairs, in issue order.
    /// The mutation-testing enumeration hook: each pair can be removed with
    /// [`Schedule::remove_wait`] to produce one schedule mutant.
    pub fn wait_edges(&self) -> Vec<(OpId, OpId)> {
        self.ops
            .iter()
            .enumerate()
            .flat_map(|(id, op)| op.waits.iter().map(move |&w| (id, w)))
            .collect()
    }

    /// Delete one explicit dependency edge (testing hook: build a schedule
    /// mutant with a dropped WAR/RAW edge). Panics if the edge is absent.
    pub fn remove_wait(&mut self, op: OpId, wait: OpId) {
        let waits = &mut self.ops[op].waits;
        let before = waits.len();
        waits.retain(|&w| w != wait);
        assert!(waits.len() < before, "op {op} has no wait on {wait}");
    }

    /// Mutable access to an op's declared effects (testing hook: build a
    /// schedule mutant with a mislabeled buffer, e.g. `BC1`↔`BC2`).
    pub fn effects_mut(&mut self, op: OpId) -> &mut Effects {
        &mut self.ops[op].effects
    }

    /// Deterministic textual dump of the recorded op stream, one line per
    /// op: id, work kind, category/label(/stage), lanes, explicit waits,
    /// and declared buffer effects. Work *magnitudes* are deliberately
    /// omitted so the dump pins the schedule's structure (op order, lane
    /// placement, dependency edges, buffer footprints — the §4.2/§4.3
    /// invariants) without becoming a golden file over the cost model's
    /// floating-point outputs.
    pub fn dump_ops(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (id, op) in self.ops.iter().enumerate() {
            let kind = match op.work {
                Work::Compute { .. } => "compute",
                Work::Comm { .. } => "comm",
                Work::Fixed { .. } => "fixed",
            };
            let mut line =
                format!("op {id:3} {kind:7} {:10} {}", op.desc.category.name(), op.desc.label);
            if let Some(s) = op.desc.stage {
                let _ = write!(line, "@{s}");
            }
            if let Some(e) = op.desc.epoch {
                let _ = write!(line, " e{e}");
            }
            let lanes: Vec<String> = op.lanes.iter().map(|(g, st)| format!("g{g}s{st}")).collect();
            let _ = write!(line, " lanes=[{}]", lanes.join(","));
            if !op.waits.is_empty() {
                let waits: Vec<String> = op.waits.iter().map(|w| w.to_string()).collect();
                let _ = write!(line, " waits=[{}]", waits.join(","));
            }
            line.push_str(&op.effects.render());
            out.push_str(&line);
            out.push('\n');
        }
        out
    }

    /// Play the schedule forward. Bodies run against `ctx` in completion
    /// order. Panics on deadlock (a schedule bug: circular waits or
    /// mismatched collective enqueue order).
    pub fn run(mut self, ctx: &Ctx) -> RunReport {
        let SimOutcome { report, completion_order } = self.simulate();
        for id in completion_order {
            if let Some(body) = self.ops[id].body.take() {
                body(ctx);
            }
        }
        report
    }

    /// [`Schedule::run`] with observation hooks: `before(id)`/`after(id)`
    /// bracket each body that executes (ops without bodies are skipped).
    /// The effect-soundness oracle uses this to attribute recorded buffer
    /// accesses ([`crate::shadow::EffectRecorder`]) and to fingerprint
    /// buffer state between bodies.
    pub fn run_observed(
        mut self,
        ctx: &Ctx,
        mut before: impl FnMut(OpId),
        mut after: impl FnMut(OpId),
    ) -> RunReport {
        let SimOutcome { report, completion_order } = self.simulate();
        for id in completion_order {
            if let Some(body) = self.ops[id].body.take() {
                before(id);
                body(ctx);
                after(id);
            }
        }
        report
    }

    /// Execute bodies in an explicit caller-chosen order, skipping the
    /// simulator entirely — the DPOR model checker's execution primitive.
    /// `order` must be a permutation of all op ids; each op's body (when
    /// present) runs exactly once. The caller is responsible for `order`
    /// being a linearization of the dependency DAG; this method does not
    /// check it, because the model checker's whole point is to execute
    /// orders the DES would never pick on its own.
    pub fn run_in_order(mut self, ctx: &Ctx, order: &[OpId]) {
        assert_eq!(order.len(), self.ops.len(), "order must cover every op");
        for &id in order {
            if let Some(body) = self.ops[id].body.take() {
                body(ctx);
            }
        }
    }

    /// Surrender the recorded ops (with their bodies) for execution by an
    /// external runtime, e.g. the `mggcn-exec` worker-per-GPU executor.
    pub fn into_records(self) -> Vec<OpRecord<Ctx>> {
        self.ops
            .into_iter()
            .map(|op| OpRecord {
                desc: op.desc,
                work: op.work,
                lanes: op.lanes,
                waits: op.waits,
                body: op.body,
            })
            .collect()
    }

    /// Run the rate-based DES over op metadata only: no bodies execute.
    /// Returns the timing report and the completion order (ties broken by
    /// ascending op id — deterministic). Panics on deadlock with the
    /// historical message; the non-panicking form is [`Schedule::simulate_with`].
    pub fn simulate(&self) -> SimOutcome {
        match self.simulate_with(Policy::DiscreteEvent, &Injector::none()) {
            Ok(out) => out,
            Err(stall) => panic!("schedule deadlock at t={}: {:?}", stall.at, stall.stuck),
        }
    }

    /// Run the DES under an explicit `mggcn-sched` policy and fault
    /// injector.
    ///
    /// With [`Policy::DiscreteEvent`] and the no-op injector this is
    /// bit-identical to [`Schedule::simulate`]: the scheduler hands the
    /// rate core back the exact completion instants it reported, and the
    /// core reuses the `dt` behind each one, so every span, makespan, and
    /// completion-order entry matches the legacy loop bit for bit.
    /// [`Policy::CycleSync`] advances on a fixed quantum instead
    /// (completions detected at grid points — lockstep debugging).
    ///
    /// Injection semantics:
    /// * [`Action::Pause`] at an op's promotion adds the pause to its
    ///   fixed-work dimension (the op is descheduled before it starts);
    /// * [`Action::Kill`] marks the op dead: it never starts, its lanes
    ///   block, and the run ends in a bounded, labeled `Err(Stall)` naming
    ///   the stuck lane heads;
    /// * slow links divide a collective's effective bandwidth by the
    ///   largest [`Injector::comm_slowdown`] factor among its lanes (which
    ///   also shrinks its memory-bandwidth draw on those GPUs).
    ///
    /// Deadlocks surface as `Err(Stall)` instead of a panic, because under
    /// injected worker death a stall is an expected, bounded outcome rather
    /// than a schedule bug.
    pub fn simulate_with(&self, policy: Policy, inj: &Injector) -> Result<SimOutcome, Stall> {
        let mut core = RateCore::new(self, inj);
        let mut driver = Scheduler::new(policy);
        driver.run(&mut [&mut core], inj)?;
        Ok(core.finish())
    }
}

/// The rate-based engine as a [`Component`]: all per-iteration state of the
/// legacy `simulate` loop, driven by [`Scheduler`] instead of an inline
/// `loop`. One `RateCore` models the whole machine (not one per GPU) so the
/// completion order — running-vec promotion order with ties by promotion —
/// is exactly the legacy order.
struct RateCore<'a, Ctx> {
    machine: &'a MachineSpec,
    ops: &'a [Op<Ctx>],
    queues: &'a BTreeMap<(usize, usize), Vec<OpId>>,
    heads: BTreeMap<(usize, usize), usize>,
    completed: Vec<bool>,
    /// Ops the injector killed at promotion: never start, block their lanes.
    killed: Vec<bool>,
    running: Vec<OpId>,
    remaining: Vec<Rem>,
    started_at: Vec<f64>,
    /// Mirror of scheduler time, kept bit-equal (advance receives the same
    /// f64 that next_event reported).
    now: f64,
    timeline: Timeline,
    executed: usize,
    completion_order: Vec<OpId>,
    /// Per-GPU comm slowdown factors (exactly 1.0 under the no-op injector,
    /// so `bw / factor` is a bit-exact identity).
    slow: Vec<f64>,
    /// Rates cache, refreshed in `next_event` and reused by `advance`
    /// (the running set cannot change between the two calls).
    comm_draw: Vec<f64>,
    compute_count: Vec<usize>,
    /// `(target_bits, dt)` from the last `next_event`: when `advance` is
    /// called with that exact target, drain by the cached `dt` — avoiding
    /// the `(now + dt) - now` float round-trip that would break
    /// bit-identity with the legacy `now += dt` loop.
    pending: Option<(u64, f64)>,
}

impl<'a, Ctx> RateCore<'a, Ctx> {
    fn new(sched: &'a Schedule<Ctx>, inj: &Injector) -> Self {
        let n_ops = sched.ops.len();
        let gpu_count = sched.machine.gpu_count();
        RateCore {
            machine: &sched.machine,
            ops: &sched.ops,
            queues: &sched.queues,
            heads: sched.queues.keys().map(|&k| (k, 0usize)).collect(),
            completed: vec![false; n_ops],
            killed: vec![false; n_ops],
            running: Vec::new(),
            remaining: sched
                .ops
                .iter()
                .map(|op| {
                    Rem::from_work(op.work, sched.launch_overhead, sched.machine.comm_latency)
                })
                .collect(),
            started_at: vec![0.0f64; n_ops],
            now: 0.0,
            timeline: Timeline::default(),
            executed: 0,
            completion_order: Vec::with_capacity(n_ops),
            slow: (0..gpu_count).map(|g| inj.comm_slowdown(g)).collect(),
            comm_draw: vec![0.0; gpu_count],
            compute_count: vec![0; gpu_count],
            pending: None,
        }
    }

    /// Effective link bandwidth of a comm op under injected slow links:
    /// the op moves at the pace of its slowest participant.
    fn effective_bw(&self, id: OpId) -> f64 {
        match self.ops[id].work {
            Work::Comm { bw, .. } => {
                let factor =
                    self.ops[id].lanes.iter().map(|&(g, _)| self.slow[g]).fold(1.0, f64::max);
                bw / factor
            }
            _ => unreachable!("effective_bw on non-comm op"),
        }
    }

    /// Recompute the shared-resource draws for the current running set.
    /// Communication drains link bandwidth from each participant GPU's
    /// memory system; concurrent compute kernels on one GPU share the rest.
    fn refresh_rates(&mut self) {
        self.comm_draw.iter_mut().for_each(|d| *d = 0.0);
        self.compute_count.iter_mut().for_each(|c| *c = 0);
        for &id in &self.running {
            match self.ops[id].work {
                Work::Comm { .. } => {
                    let bw = self.effective_bw(id);
                    for &(g, _) in &self.ops[id].lanes {
                        self.comm_draw[g] += bw;
                    }
                }
                Work::Compute { .. } => {
                    self.compute_count[self.ops[id].lanes[0].0] += 1;
                }
                Work::Fixed { .. } => {}
            }
        }
    }

    fn rate_of(&self, id: OpId) -> Rates {
        match self.ops[id].work {
            Work::Comm { .. } => Rates { byte: self.effective_bw(id), flop: f64::INFINITY },
            Work::Compute { .. } => {
                let g = self.ops[id].lanes[0].0;
                let spec = &self.machine.gpus[g];
                let share = self.compute_count[g].max(1) as f64;
                // Floor at 10% so a saturating comm storm cannot starve
                // compute entirely (hardware arbiters don't).
                let bw = ((spec.mem_bw - self.comm_draw[g]).max(0.1 * spec.mem_bw)) / share;
                Rates { byte: bw, flop: spec.flops / share }
            }
            Work::Fixed { .. } => Rates { byte: f64::INFINITY, flop: f64::INFINITY },
        }
    }

    fn finish(self) -> SimOutcome {
        SimOutcome {
            report: RunReport {
                makespan: self.now,
                timeline: self.timeline,
                ops_executed: self.executed,
            },
            completion_order: self.completion_order,
        }
    }
}

impl<Ctx> Component for RateCore<'_, Ctx> {
    fn label(&self) -> String {
        format!("gpusim rate core ({} ops)", self.ops.len())
    }

    fn dispatch(&mut self, now: f64, inj: &Injector) -> bool {
        // Promote every ready head op. A collective is ready when at the
        // head of each of its lanes; repeat until fixpoint since one
        // promotion can expose another lane's head.
        let mut any = false;
        let mut promoted = true;
        while promoted {
            promoted = false;
            let candidates: Vec<OpId> = self
                .heads
                .iter()
                .filter_map(|(&lane, &h)| self.queues[&lane].get(h).copied())
                .collect();
            for id in candidates {
                if self.completed[id] || self.killed[id] || self.running.contains(&id) {
                    continue;
                }
                let op = &self.ops[id];
                let at_all_heads = op
                    .lanes
                    .iter()
                    .all(|lane| self.queues[lane].get(self.heads[lane]) == Some(&id));
                let deps_done = op.waits.iter().all(|&w| self.completed[w]);
                if at_all_heads && deps_done {
                    if !inj.is_noop() {
                        let site = DispatchSite::SimStart {
                            gpu: op.lanes[0].0,
                            stream: op.lanes[0].1,
                            seq: id,
                            collective: op.lanes.len() > 1,
                        };
                        match inj.at(site) {
                            Action::Kill => {
                                // The op dies at launch: it never runs and
                                // its lanes block, surfacing as a stall.
                                self.killed[id] = true;
                                continue;
                            }
                            Action::Pause { seconds } => {
                                // Preemption before start: extend the op's
                                // fixed-work dimension by the pause.
                                self.remaining[id].seconds += seconds;
                            }
                            Action::None => {}
                        }
                    }
                    self.running.push(id);
                    self.started_at[id] = now;
                    promoted = true;
                    any = true;
                }
            }
        }
        any
    }

    fn next_event(&mut self, now: f64) -> Option<f64> {
        if self.running.is_empty() {
            self.pending = None;
            return None;
        }
        self.refresh_rates();
        // Earliest completion under current rates.
        let mut dt = f64::INFINITY;
        for &id in &self.running {
            dt = dt.min(self.remaining[id].eta(self.rate_of(id)));
        }
        debug_assert!(dt.is_finite(), "running op with infinite ETA");
        let target = now + dt;
        self.pending = Some((target.to_bits(), dt));
        Some(target)
    }

    fn advance(&mut self, next: f64, _inj: &Injector) -> bool {
        if self.running.is_empty() {
            self.pending = None;
            return false;
        }
        // Bit-exact path: the scheduler advanced to exactly the instant we
        // reported, so drain by the dt we computed it from. Fallback (other
        // components' events, cycle-sync quanta): drain by the difference.
        let dt = match self.pending.take() {
            Some((bits, dt)) if bits == next.to_bits() => dt,
            _ => next - self.now,
        };
        // Drain work and collect completions. Rates were refreshed by
        // `next_event` this round (scheduler contract).
        let mut finished: Vec<OpId> = Vec::new();
        for &id in &self.running {
            let rates = self.rate_of(id);
            self.remaining[id].advance(dt, rates);
            if self.remaining[id].done() {
                finished.push(id);
            }
        }
        self.now = next;
        let retired = !finished.is_empty();
        for id in finished {
            self.running.retain(|&r| r != id);
            self.completed[id] = true;
            self.executed += 1;
            self.completion_order.push(id);
            let op = &self.ops[id];
            let bytes = match op.work {
                Work::Compute { bytes, .. } | Work::Comm { bytes, .. } => bytes,
                Work::Fixed { .. } => 0.0,
            };
            for &(gpu, stream) in &op.lanes {
                self.timeline.spans.push(Span {
                    gpu,
                    stream,
                    category: op.desc.category,
                    stage: op.desc.stage,
                    label: op.desc.label,
                    start: self.started_at[id],
                    end: self.now,
                    op: id,
                    bytes,
                    reads: op.effects.reads.len() as u32,
                    writes: op.effects.writes.len() as u32,
                    epoch: op.desc.epoch,
                });
            }
            for lane in &op.lanes {
                // Advance each lane head past this op.
                let h = self.heads.get_mut(lane).expect("lane exists");
                while self.queues[lane].get(*h).is_some_and(|&q| self.completed[q]) {
                    *h += 1;
                }
            }
        }
        retired
    }

    fn is_done(&self) -> bool {
        self.completed.iter().all(|&c| c)
    }

    fn stuck(&self) -> Vec<String> {
        self.heads
            .iter()
            .filter_map(|(&lane, &h)| {
                self.queues[&lane].get(h).map(|&id| {
                    format!("lane {:?} head op {} ({})", lane, id, self.ops[id].desc.label)
                })
            })
            .collect()
    }
}

#[derive(Clone, Copy)]
struct Rates {
    byte: f64,
    flop: f64,
}

/// Remaining work of a running op.
#[derive(Clone, Copy, Debug)]
struct Rem {
    seconds: f64,
    flops: f64,
    bytes: f64,
}

impl Rem {
    fn from_work(w: Work, overhead: f64, comm_latency: f64) -> Self {
        match w {
            Work::Compute { flops, bytes } => Self { seconds: overhead, flops, bytes },
            Work::Comm { bytes, .. } => {
                Self { seconds: overhead + comm_latency, flops: 0.0, bytes }
            }
            Work::Fixed { seconds } => Self { seconds: seconds + overhead, flops: 0.0, bytes: 0.0 },
        }
    }

    /// Time to finish at the given rates (dimensions drain concurrently).
    fn eta(&self, r: Rates) -> f64 {
        let mut t = self.seconds;
        if self.flops > 0.0 {
            t = t.max(self.flops / r.flop);
        }
        if self.bytes > 0.0 {
            t = t.max(self.bytes / r.byte);
        }
        t
    }

    fn advance(&mut self, dt: f64, r: Rates) {
        self.seconds = (self.seconds - dt).max(0.0);
        self.flops = (self.flops - r.flop * dt).max(0.0);
        self.bytes = (self.bytes - r.byte * dt).max(0.0);
    }

    fn done(&self) -> bool {
        const EPS: f64 = 1e-12;
        self.seconds <= EPS && self.flops <= EPS && self.bytes <= EPS * 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::specs::{GpuSpec, MachineSpec};

    fn machine(n: usize) -> MachineSpec {
        let mut m = MachineSpec::uniform("test", GpuSpec::v100(), n, 6, 25.0e9);
        m.comm_latency = 0.0;
        m
    }

    fn desc(cat: Category) -> OpDesc {
        OpDesc::new(cat, "test")
    }

    #[test]
    fn single_fixed_op_duration() {
        let mut s: Schedule<()> = Schedule::new(machine(1));
        s.launch_overhead = 0.0;
        s.launch(0, 0, Work::Fixed { seconds: 1.5 }, desc(Category::Other), &[], None);
        let r = s.run(&());
        assert!((r.makespan - 1.5).abs() < 1e-9);
        assert_eq!(r.ops_executed, 1);
    }

    #[test]
    fn stream_is_fifo() {
        let mut s: Schedule<std::sync::Mutex<Vec<u32>>> = Schedule::new(machine(1));
        s.launch_overhead = 0.0;
        for i in 0..3u32 {
            s.launch(
                0,
                0,
                Work::Fixed { seconds: 0.1 },
                desc(Category::Other),
                &[],
                Some(Box::new(move |v: &std::sync::Mutex<Vec<u32>>| v.lock().unwrap().push(i))),
            );
        }
        let order = std::sync::Mutex::new(Vec::new());
        let r = s.run(&order);
        assert_eq!(order.into_inner().unwrap(), vec![0, 1, 2]);
        assert!((r.makespan - 0.3).abs() < 1e-9);
    }

    #[test]
    fn independent_streams_run_in_parallel() {
        let mut s: Schedule<()> = Schedule::new(machine(2));
        s.launch_overhead = 0.0;
        s.launch(0, 0, Work::Fixed { seconds: 1.0 }, desc(Category::Other), &[], None);
        s.launch(1, 0, Work::Fixed { seconds: 1.0 }, desc(Category::Other), &[], None);
        let r = s.run(&());
        assert!((r.makespan - 1.0).abs() < 1e-9, "makespan {}", r.makespan);
    }

    #[test]
    fn cross_stream_wait_serializes() {
        type Log = std::sync::Mutex<Vec<&'static str>>;
        let mut s: Schedule<Log> = Schedule::new(machine(1));
        s.launch_overhead = 0.0;
        let a = s.launch(
            0,
            0,
            Work::Fixed { seconds: 1.0 },
            desc(Category::Other),
            &[],
            Some(Box::new(|v: &Log| v.lock().unwrap().push("a"))),
        );
        s.launch(
            0,
            1,
            Work::Fixed { seconds: 0.5 },
            desc(Category::Other),
            &[a],
            Some(Box::new(|v: &Log| v.lock().unwrap().push("b"))),
        );
        let order: Log = std::sync::Mutex::new(Vec::new());
        let r = s.run(&order);
        assert_eq!(*order.lock().unwrap(), vec!["a", "b"]);
        assert!((r.makespan - 1.5).abs() < 1e-9);
    }

    #[test]
    fn compute_roofline_uses_max_of_dimensions() {
        // bytes-bound: 900e9 bytes at 900 GB/s = 1s even though flops tiny.
        let mut s: Schedule<()> = Schedule::new(machine(1));
        s.launch_overhead = 0.0;
        s.launch(
            0,
            0,
            Work::Compute { flops: 1.0, bytes: 900.0e9 },
            desc(Category::SpMM),
            &[],
            None,
        );
        let r = s.run(&());
        assert!((r.makespan - 1.0).abs() < 1e-6, "makespan {}", r.makespan);
    }

    #[test]
    fn overlapping_comm_slows_membound_compute() {
        // Without comm: 900e9 bytes -> 1s. With a concurrent 150 GB/s comm
        // stream the SpMM sees 750 GB/s -> 1.2s. This is the paper's §6.3
        // contention effect.
        let mk = || {
            let mut s: Schedule<()> = Schedule::new(machine(2));
            s.launch_overhead = 0.0;
            s
        };
        let mut alone = mk();
        alone.launch(
            0,
            0,
            Work::Compute { flops: 0.0, bytes: 900.0e9 },
            desc(Category::SpMM),
            &[],
            None,
        );
        let t_alone = alone.run(&()).makespan;

        let mut overlapped = mk();
        overlapped.launch(
            0,
            0,
            Work::Compute { flops: 0.0, bytes: 900.0e9 },
            desc(Category::SpMM),
            &[],
            None,
        );
        // A long-running broadcast on the comm stream of the same GPU.
        overlapped.collective(&[(0, 1), (1, 1)], 600.0e9, 150.0e9, desc(Category::Comm), &[], None);
        let t_over = overlapped.run(&()).makespan;
        assert!(t_over > t_alone * 1.15, "alone {t_alone}, overlapped {t_over}");
    }

    #[test]
    fn collective_rendezvous_waits_for_all_lanes() {
        // GPU 1 is busy for 1s before it reaches the collective; GPU 0
        // reaches it immediately. The collective (0.1s) must end after 1.1s.
        let mut s: Schedule<()> = Schedule::new(machine(2));
        s.launch_overhead = 0.0;
        s.launch(1, 1, Work::Fixed { seconds: 1.0 }, desc(Category::Other), &[], None);
        s.collective(&[(0, 1), (1, 1)], 2.5e9, 25.0e9, desc(Category::Comm), &[], None);
        let r = s.run(&());
        assert!((r.makespan - 1.1).abs() < 1e-6, "makespan {}", r.makespan);
    }

    #[test]
    fn timeline_records_all_lanes_of_collective() {
        let mut s: Schedule<()> = Schedule::new(machine(3));
        s.launch_overhead = 0.0;
        s.collective(&[(0, 1), (1, 1), (2, 1)], 1.0e9, 25.0e9, desc(Category::Comm), &[], None);
        let r = s.run(&());
        assert_eq!(r.timeline.spans.len(), 3);
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn fifo_dependency_cycle_deadlocks() {
        // Op X is at the head of stream (0,0) but waits on op Y, which sits
        // *behind* X in the same stream — the FIFO can never advance. This
        // is the stream-ordering bug class the detector exists for.
        let mut s: Schedule<()> = Schedule::new(machine(1));
        let placeholder =
            s.launch(0, 1, Work::Fixed { seconds: 0.1 }, desc(Category::Other), &[], None);
        let _x = s.launch(
            0,
            0,
            Work::Fixed { seconds: 0.1 },
            desc(Category::Other),
            &[placeholder + 2], // forward reference to y, launched next
            None,
        );
        let _y = s.launch(0, 0, Work::Fixed { seconds: 0.1 }, desc(Category::Other), &[], None);
        let _ = s.run(&());
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn mismatched_collective_order_deadlocks() {
        // GPU0's stream enqueues collective A then B; GPU1's stream enqueues
        // B's slot first via a blocker that waits on B. Classic NCCL-style
        // rendezvous deadlock: A needs GPU1's head, which B's blocker holds.
        let mut s: Schedule<()> = Schedule::new(machine(2));
        // B is op index 1 (launched second); blocker waits on it but is
        // queued first on GPU1's lane.
        s.launch(1, 1, Work::Fixed { seconds: 0.1 }, desc(Category::Other), &[1], None);
        s.collective(&[(0, 1), (1, 1)], 1.0e9, 25.0e9, desc(Category::Comm), &[], None);
        let _ = s.run(&());
    }

    #[test]
    fn concurrent_compute_ops_share_the_gpu() {
        // Two FLOP-bound kernels on different streams of one GPU must each
        // run at half rate: together they take as long as running them
        // back to back.
        let flops = GpuSpec::v100().flops; // 1 second solo
        let mk = |streams: [usize; 2]| {
            let mut s: Schedule<()> = Schedule::new(machine(1));
            s.launch_overhead = 0.0;
            for st in streams {
                s.launch(
                    0,
                    st,
                    Work::Compute { flops, bytes: 0.0 },
                    desc(Category::GeMM),
                    &[],
                    None,
                );
            }
            s.run(&()).makespan
        };
        let serial = mk([0, 0]);
        let shared = mk([0, 1]);
        assert!((serial - 2.0).abs() < 1e-6, "serial {serial}");
        assert!((shared - 2.0).abs() < 1e-6, "shared {shared}");
    }

    #[test]
    fn compute_on_different_gpus_does_not_share() {
        let flops = GpuSpec::v100().flops;
        let mut s: Schedule<()> = Schedule::new(machine(2));
        s.launch_overhead = 0.0;
        for g in 0..2 {
            s.launch(g, 0, Work::Compute { flops, bytes: 0.0 }, desc(Category::GeMM), &[], None);
        }
        let t = s.run(&()).makespan;
        assert!((t - 1.0).abs() < 1e-6, "makespan {t}");
    }

    #[test]
    fn comm_rate_is_not_affected_by_compute() {
        // A broadcast's link bandwidth is independent of GPU compute load.
        let mut s: Schedule<()> = Schedule::new(machine(2));
        s.launch_overhead = 0.0;
        s.launch(
            0,
            0,
            Work::Compute { flops: GpuSpec::v100().flops, bytes: 0.0 },
            desc(Category::GeMM),
            &[],
            None,
        );
        s.collective(&[(0, 1), (1, 1)], 25.0e9, 25.0e9, desc(Category::Comm), &[], None);
        let r = s.run(&());
        // Comm finishes at 1.0 s despite the busy GPU; makespan is the
        // 1-second compute.
        let comm_span =
            r.timeline.spans.iter().find(|sp| sp.category == Category::Comm).expect("comm span");
        assert!((comm_span.duration() - 1.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "lists lane (gpu 1, stream 1) twice")]
    fn collective_rejects_duplicate_lanes() {
        // A duplicate lane can never rendezvous: the op would have to be at
        // the head of one FIFO twice. Must be rejected at record time, not
        // discovered as a deadlock at run time.
        let mut s: Schedule<()> = Schedule::new(machine(2));
        s.collective(&[(0, 1), (1, 1), (1, 1)], 1.0e9, 25.0e9, desc(Category::Comm), &[], None);
    }

    #[test]
    #[should_panic(expected = "waits on itself")]
    fn collective_rejects_self_wait() {
        let mut s: Schedule<()> = Schedule::new(machine(2));
        // The collective will get id 0; waiting on 0 is a self-wait.
        s.collective(&[(0, 1), (1, 1)], 1.0e9, 25.0e9, desc(Category::Comm), &[0], None);
    }

    #[test]
    #[should_panic(expected = "waits on itself")]
    fn launch_rejects_self_wait() {
        let mut s: Schedule<()> = Schedule::new(machine(1));
        s.launch(0, 0, Work::Fixed { seconds: 0.1 }, desc(Category::Other), &[0], None);
    }

    #[test]
    fn effects_are_recorded_dumped_and_mutable() {
        use crate::effects::{BufId, Effects};
        let mut s: Schedule<()> = Schedule::new(machine(1));
        let a = s.launch_fx(
            0,
            0,
            Work::Fixed { seconds: 0.1 },
            desc(Category::GeMM),
            &[],
            Effects::none().reads([BufId::new(0, "HW")]).writes([BufId::indexed(0, "AHW", 0)]),
            None,
        );
        let b = s.launch(0, 1, Work::Fixed { seconds: 0.1 }, desc(Category::Other), &[a], None);

        let infos = s.op_infos();
        assert_eq!(infos.len(), 2);
        assert_eq!(infos[a].effects.reads, vec![BufId::new(0, "HW")]);
        assert!(infos[b].effects.is_empty());
        assert_eq!(s.wait_edges(), vec![(b, a)]);

        let dump = s.dump_ops();
        assert!(dump.contains("R[HW@g0] W[AHW.0@g0]"), "dump:\n{dump}");

        s.effects_mut(a).writes = vec![BufId::new(0, "BC1")];
        assert!(s.dump_ops().contains("W[BC1@g0]"));
        s.remove_wait(b, a);
        assert!(s.wait_edges().is_empty());
    }

    #[test]
    #[should_panic(expected = "has no wait on")]
    fn remove_wait_rejects_absent_edge() {
        let mut s: Schedule<()> = Schedule::new(machine(1));
        s.launch(0, 0, Work::Fixed { seconds: 0.1 }, desc(Category::Other), &[], None);
        s.remove_wait(0, 5);
    }

    #[test]
    fn span_records_effect_counts() {
        use crate::effects::{BufId, Effects};
        let mut s: Schedule<()> = Schedule::new(machine(1));
        s.launch_overhead = 0.0;
        s.launch_fx(
            0,
            0,
            Work::Fixed { seconds: 0.1 },
            desc(Category::SpMM),
            &[],
            Effects::none().reads([BufId::new(0, "BC1")]).rw(BufId::new(0, "HW")),
            None,
        );
        let r = s.run(&());
        assert_eq!(r.timeline.spans[0].reads, 2);
        assert_eq!(r.timeline.spans[0].writes, 1);
    }

    #[test]
    fn launch_overhead_is_charged() {
        let mut s: Schedule<()> = Schedule::new(machine(1));
        s.launch_overhead = 0.25;
        s.launch(0, 0, Work::Fixed { seconds: 1.0 }, desc(Category::Other), &[], None);
        let r = s.run(&());
        assert!((r.makespan - 1.25).abs() < 1e-9);
    }
}
