//! Chrome-trace export (`chrome://tracing` / Perfetto JSON).
//!
//! Turns an engine [`Timeline`] into the Trace Event Format so epoch
//! schedules can be inspected interactively — the visual equivalent of the
//! paper's Figs 6 and 8. Each `(gpu, stream)` lane becomes a thread; each
//! op becomes a complete (`"X"`) event with its category and stage in
//! `args`. The writer is hand-rolled (the format is trivial JSON) so no
//! serializer dependency is needed.

use crate::timeline::Timeline;
use std::fmt::Write as _;

/// Render a timeline as a Trace Event Format JSON string. Durations are
/// exported in microseconds, as the format expects.
pub fn to_chrome_trace(tl: &Timeline) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    // Thread name metadata per lane.
    let mut lanes: Vec<(usize, usize)> = tl
        .spans
        .iter()
        .map(|s| (s.gpu, s.stream))
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    lanes.sort_unstable();
    for &(gpu, stream) in &lanes {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let kind = if stream == 0 { "compute" } else { "comm" };
        write!(
            out,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{gpu},\"tid\":{stream},\
             \"args\":{{\"name\":\"GPU {gpu} {kind}\"}}}}"
        )
        .expect("write to string");
    }
    for s in &tl.spans {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let ts = s.start * 1e6;
        let dur = s.duration() * 1e6;
        let stage = s.stage.map(|x| x as i64).unwrap_or(-1);
        write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{ts:.3},\"dur\":{dur:.3},\
             \"pid\":{},\"tid\":{},\"args\":{{\"stage\":{stage},\"reads\":{},\"writes\":{}}}}}",
            s.label,
            s.category.name(),
            s.gpu,
            s.stream,
            s.reads,
            s.writes,
        )
        .expect("write to string");
    }
    out.push_str("\n]}\n");
    out
}

/// Write a timeline to a `.json` trace file.
pub fn write_chrome_trace(tl: &Timeline, path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, to_chrome_trace(tl))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeline::{Category, Span};

    fn tl() -> Timeline {
        Timeline {
            spans: vec![
                Span {
                    gpu: 0,
                    stream: 0,
                    category: Category::SpMM,
                    stage: Some(2),
                    label: "spmm",
                    start: 0.001,
                    end: 0.002,
                    op: 0,
                    bytes: 0.0,
                    reads: 2,
                    writes: 1,
                    epoch: None,
                },
                Span {
                    gpu: 1,
                    stream: 1,
                    category: Category::Comm,
                    stage: None,
                    label: "bcast",
                    start: 0.0,
                    end: 0.0005,
                    op: 1,
                    bytes: 64.0,
                    reads: 0,
                    writes: 0,
                    epoch: None,
                },
            ],
        }
    }

    #[test]
    fn trace_contains_events_and_metadata() {
        let json = to_chrome_trace(&tl());
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"name\":\"spmm\""));
        assert!(json.contains("\"cat\":\"SpMM\""));
        assert!(json.contains("\"stage\":2"));
        assert!(json.contains("\"stage\":-1"));
        assert!(json.contains("\"reads\":2,\"writes\":1"));
        assert!(json.contains("GPU 0 compute"));
        assert!(json.contains("GPU 1 comm"));
    }

    #[test]
    fn timestamps_are_microseconds() {
        let json = to_chrome_trace(&tl());
        // 0.001 s -> 1000 us.
        assert!(json.contains("\"ts\":1000.000"));
        assert!(json.contains("\"dur\":1000.000"));
    }

    #[test]
    fn empty_timeline_is_valid() {
        let json = to_chrome_trace(&Timeline::default());
        assert!(json.contains("\"traceEvents\""));
        assert!(json.trim_end().ends_with("]}"));
    }

    #[test]
    fn file_roundtrip() {
        let path = std::env::temp_dir().join(format!("mggcn_trace_{}.json", std::process::id()));
        write_chrome_trace(&tl(), &path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(text.contains("spmm"));
    }

    #[test]
    fn event_count_matches_spans_plus_lanes() {
        let json = to_chrome_trace(&tl());
        let events = json.matches("\"ph\":\"X\"").count();
        let metas = json.matches("\"ph\":\"M\"").count();
        assert_eq!(events, 2);
        assert_eq!(metas, 2);
    }
}
