//! Shadow effect recording — the runtime half of the effect-soundness
//! oracle.
//!
//! The declared [`crate::effects::Effects`] on each op are hand-maintained
//! metadata; everything `mggcn-analyze` proves is only as sound as those
//! declarations. This module records what an op body *actually* touches
//! while the simulator runs it: instrumented buffer accessors in the
//! context call [`EffectRecorder::read`]/[`EffectRecorder::write`], and the
//! runner ([`crate::engine::Schedule::run_observed`]) brackets each body
//! with [`EffectRecorder::begin`]/[`EffectRecorder::end`] so accesses
//! attribute to the op that performed them. Diffing the resulting
//! [`ActualEffects`] log against the declarations is `analyze`'s
//! `audit_effects` pass: an access the body performed but the site never
//! declared is a hard finding (the hazard analysis was unsound); a
//! declaration the body never exercised is a warning.
//!
//! The recorder is deliberately passive: when no op is current (e.g. a
//! buffer accessor used outside a schedule body, or a schedule run without
//! observation), every call is a no-op, so instrumentation never perturbs
//! ordinary training or serving paths.

use crate::effects::BufId;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex};

/// What one op body actually did to tracked buffers, as observed during
/// one simulated run. `stale` maps each read buffer to the age (in epochs)
/// of the value it consumed, for readers in epoch-tagged fused schedules;
/// the runner fills it in from the observed write history.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ActualEffects {
    pub reads: BTreeSet<BufId>,
    pub writes: BTreeSet<BufId>,
    /// Observed cross-epoch read ages: reader epoch minus last-writer epoch,
    /// only present when > 0.
    pub stale: BTreeMap<BufId, usize>,
}

impl ActualEffects {
    pub fn is_empty(&self) -> bool {
        self.reads.is_empty() && self.writes.is_empty()
    }
}

struct Inner {
    /// Op currently executing a body, if any; accesses attribute here.
    current: Option<usize>,
    log: Vec<ActualEffects>,
}

/// Shared recorder threaded through a context's buffer accessors. One
/// slot per op id; `begin`/`end` select the attribution target.
pub struct EffectRecorder {
    inner: Mutex<Inner>,
}

impl EffectRecorder {
    pub fn new(op_count: usize) -> Arc<Self> {
        Arc::new(Self {
            inner: Mutex::new(Inner {
                current: None,
                log: vec![ActualEffects::default(); op_count],
            }),
        })
    }

    /// Start attributing accesses to `op`.
    pub fn begin(&self, op: usize) {
        let mut g = self.lock();
        debug_assert!(g.current.is_none(), "recorder begin({op}) while an op is current");
        g.current = Some(op);
    }

    /// Stop attributing (subsequent accesses are dropped).
    pub fn end(&self) {
        self.lock().current = None;
    }

    /// Record a read of `buf` by the current op (no-op when none).
    pub fn read(&self, buf: BufId) {
        let mut g = self.lock();
        if let Some(op) = g.current {
            g.log[op].reads.insert(buf);
        }
    }

    /// Record a write of `buf` by the current op (no-op when none).
    pub fn write(&self, buf: BufId) {
        let mut g = self.lock();
        if let Some(op) = g.current {
            g.log[op].writes.insert(buf);
        }
    }

    /// Snapshot of what the given op has recorded so far.
    pub fn snapshot(&self, op: usize) -> ActualEffects {
        self.lock().log[op].clone()
    }

    /// Record the observed staleness of a read `buf` by op `op`.
    pub fn note_stale(&self, op: usize, buf: BufId, age: usize) {
        let mut g = self.lock();
        let slot = g.log[op].stale.entry(buf).or_insert(0);
        *slot = (*slot).max(age);
    }

    /// Surrender the per-op log (recorder can be dropped afterwards).
    pub fn take_log(&self) -> Vec<ActualEffects> {
        let mut g = self.lock();
        g.current = None;
        std::mem::take(&mut g.log)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attribution_follows_begin_end() {
        let rec = EffectRecorder::new(2);
        let hw = BufId::new(0, "HW");
        rec.read(hw); // no current op: dropped
        rec.begin(0);
        rec.read(hw);
        rec.write(hw);
        rec.end();
        rec.begin(1);
        rec.write(BufId::new(1, "BC1"));
        rec.end();
        let log = rec.take_log();
        assert!(log[0].reads.contains(&hw) && log[0].writes.contains(&hw));
        assert!(log[1].reads.is_empty());
        assert!(log[1].writes.contains(&BufId::new(1, "BC1")));
    }

    #[test]
    fn stale_notes_keep_the_max_age() {
        let rec = EffectRecorder::new(1);
        let sf = BufId::indexed(0, "SF", 0);
        rec.note_stale(0, sf, 1);
        rec.note_stale(0, sf, 2);
        rec.note_stale(0, sf, 1);
        assert_eq!(rec.take_log()[0].stale.get(&sf), Some(&2));
    }
}
