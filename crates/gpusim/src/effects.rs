//! Declared buffer effects for scheduled ops.
//!
//! Every `launch_fx`/`collective_fx` site can declare the logical buffers
//! the op's body reads and writes ([`Effects`]). Buffers are named per GPU
//! ([`BufId`]): the trainer's `AHW.l@g`, `HW@g`, the §4.3 double buffers
//! `BC1@g`/`BC2@g`, weights `W.l@g`, gradients `WG.l@g`, and so on. The
//! declarations are metadata only — the simulator and the threaded
//! executor ignore them — but `mggcn-analyze` proves hazard-freedom and
//! the §4.2 `L + 3` liveness bound over them, so a schedule that drops a
//! double-buffer WAR edge becomes a static finding instead of silent data
//! corruption.

use std::fmt;

/// One logical buffer on one GPU. Identity is `(gpu, name, index)`:
/// `BufId::indexed(1, "AHW", 0)` is layer 0's activation buffer on GPU 1,
/// distinct from the same buffer on any other GPU.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BufId {
    pub gpu: usize,
    pub name: &'static str,
    /// Layer/slot index for buffer families (`AHW.l`, `W.l`); `None` for
    /// singletons (`HW`, `BC1`, `BC2`, `X`).
    pub index: Option<usize>,
}

impl BufId {
    pub fn new(gpu: usize, name: &'static str) -> Self {
        Self { gpu, name, index: None }
    }

    pub fn indexed(gpu: usize, name: &'static str, index: usize) -> Self {
        Self { gpu, name, index: Some(index) }
    }
}

impl fmt::Display for BufId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.index {
            Some(i) => write!(f, "{}.{}@g{}", self.name, i, self.gpu),
            None => write!(f, "{}@g{}", self.name, self.gpu),
        }
    }
}

/// The declared read/write footprint of one op. A read-modify-write
/// buffer (in-place ReLU, an accumulating SpMM) appears in both sets.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Effects {
    pub reads: Vec<BufId>,
    pub writes: Vec<BufId>,
}

impl Effects {
    /// No declared effects (the default for plain `launch`/`collective`).
    pub fn none() -> Self {
        Self::default()
    }

    pub fn is_empty(&self) -> bool {
        self.reads.is_empty() && self.writes.is_empty()
    }

    /// Builder: add read buffers.
    pub fn reads(mut self, bufs: impl IntoIterator<Item = BufId>) -> Self {
        self.reads.extend(bufs);
        self
    }

    /// Builder: add write buffers.
    pub fn writes(mut self, bufs: impl IntoIterator<Item = BufId>) -> Self {
        self.writes.extend(bufs);
        self
    }

    /// Builder: add a read-modify-write buffer (both sets).
    pub fn rw(mut self, buf: BufId) -> Self {
        self.reads.push(buf);
        self.writes.push(buf);
        self
    }

    /// Compact textual form for dumps: ` R[a,b] W[c]`, empty sets omitted,
    /// entries sorted so the rendering is deterministic regardless of
    /// declaration order.
    pub fn render(&self) -> String {
        fn set(tag: &str, bufs: &[BufId]) -> String {
            if bufs.is_empty() {
                return String::new();
            }
            let mut sorted = bufs.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            let items: Vec<String> = sorted.iter().map(|b| b.to_string()).collect();
            format!(" {tag}[{}]", items.join(","))
        }
        format!("{}{}", set("R", &self.reads), set("W", &self.writes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(BufId::new(0, "HW").to_string(), "HW@g0");
        assert_eq!(BufId::indexed(3, "AHW", 1).to_string(), "AHW.1@g3");
    }

    #[test]
    fn builder_and_render() {
        let fx = Effects::none()
            .reads([BufId::new(1, "BC1"), BufId::new(0, "HW")])
            .writes([BufId::indexed(0, "AHW", 0)]);
        assert_eq!(fx.render(), " R[HW@g0,BC1@g1] W[AHW.0@g0]");
        assert!(!fx.is_empty());
        assert!(Effects::none().is_empty());
        assert_eq!(Effects::none().render(), "");
    }

    #[test]
    fn rw_lands_in_both_sets() {
        let fx = Effects::none().rw(BufId::new(0, "HW"));
        assert_eq!(fx.reads, fx.writes);
        assert_eq!(fx.render(), " R[HW@g0] W[HW@g0]");
    }

    #[test]
    fn render_dedups_and_sorts() {
        let fx =
            Effects::none().reads([BufId::new(0, "HW"), BufId::new(0, "HW"), BufId::new(0, "BC1")]);
        assert_eq!(fx.render(), " R[BC1@g0,HW@g0]");
    }
}
