//! Declared buffer effects for scheduled ops.
//!
//! Every `launch_fx`/`collective_fx` site can declare the logical buffers
//! the op's body reads and writes ([`Effects`]). Buffers are named per GPU
//! ([`BufId`]): the trainer's `AHW.l@g`, `HW@g`, the §4.3 double buffers
//! `BC1@g`/`BC2@g`, weights `W.l@g`, gradients `WG.l@g`, and so on. The
//! declarations are metadata only — the simulator and the threaded
//! executor ignore them — but `mggcn-analyze` proves hazard-freedom and
//! the §4.2 `L + 3` liveness bound over them, so a schedule that drops a
//! double-buffer WAR edge becomes a static finding instead of silent data
//! corruption.

use std::fmt;

/// One logical buffer on one GPU. Identity is `(gpu, name, index)`:
/// `BufId::indexed(1, "AHW", 0)` is layer 0's activation buffer on GPU 1,
/// distinct from the same buffer on any other GPU.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BufId {
    pub gpu: usize,
    pub name: &'static str,
    /// Layer/slot index for buffer families (`AHW.l`, `W.l`); `None` for
    /// singletons (`HW`, `BC1`, `BC2`, `X`).
    pub index: Option<usize>,
}

impl BufId {
    pub fn new(gpu: usize, name: &'static str) -> Self {
        Self { gpu, name, index: None }
    }

    pub fn indexed(gpu: usize, name: &'static str, index: usize) -> Self {
        Self { gpu, name, index: Some(index) }
    }
}

impl fmt::Display for BufId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.index {
            Some(i) => write!(f, "{}.{}@g{}", self.name, i, self.gpu),
            None => write!(f, "{}@g{}", self.name, self.gpu),
        }
    }
}

/// A declared bounded-stale read: the op intentionally consumes `buf`
/// written up to `age` epochs earlier (PipeGCN-style cross-epoch
/// pipelining). The analyzer treats a cross-epoch RAW on `buf` as safe iff
/// the reader declares it here with a sufficient age; undeclared
/// cross-epoch reads stay hazards.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StaleRead {
    pub buf: BufId,
    /// Maximum tolerated staleness in epochs (>= 1).
    pub age: usize,
}

impl fmt::Display for StaleRead {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}<={}", self.buf, self.age)
    }
}

/// The declared read/write footprint of one op. A read-modify-write
/// buffer (in-place ReLU, an accumulating SpMM) appears in both sets.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Effects {
    pub reads: Vec<BufId>,
    pub writes: Vec<BufId>,
    /// Reads in `reads` that are *declared* bounded-stale (cross-epoch).
    /// Empty for all single-epoch schedules, so rendering and equality are
    /// unchanged for legacy schedules.
    pub stale_reads: Vec<StaleRead>,
}

impl Effects {
    /// No declared effects (the default for plain `launch`/`collective`).
    pub fn none() -> Self {
        Self::default()
    }

    pub fn is_empty(&self) -> bool {
        self.reads.is_empty() && self.writes.is_empty()
    }

    /// Builder: add read buffers.
    pub fn reads(mut self, bufs: impl IntoIterator<Item = BufId>) -> Self {
        self.reads.extend(bufs);
        self
    }

    /// Builder: add write buffers.
    pub fn writes(mut self, bufs: impl IntoIterator<Item = BufId>) -> Self {
        self.writes.extend(bufs);
        self
    }

    /// Builder: add a read-modify-write buffer (both sets).
    pub fn rw(mut self, buf: BufId) -> Self {
        self.reads.push(buf);
        self.writes.push(buf);
        self
    }

    /// Builder: declare bounded-stale reads (the buffers are also added to
    /// `reads` so the plain hazard footprint stays complete).
    pub fn stale(mut self, decls: impl IntoIterator<Item = StaleRead>) -> Self {
        for d in decls {
            assert!(d.age >= 1, "stale read age must be >= 1 (got {} for {})", d.age, d.buf);
            if !self.reads.contains(&d.buf) {
                self.reads.push(d.buf);
            }
            self.stale_reads.push(d);
        }
        self
    }

    /// Declared staleness bound for `buf`, if any (max over declarations).
    pub fn stale_age(&self, buf: BufId) -> Option<usize> {
        self.stale_reads.iter().filter(|d| d.buf == buf).map(|d| d.age).max()
    }

    /// Compact textual form for dumps: ` R[a,b] W[c]`, empty sets omitted,
    /// entries sorted so the rendering is deterministic regardless of
    /// declaration order.
    pub fn render(&self) -> String {
        fn set(tag: &str, bufs: &[BufId]) -> String {
            if bufs.is_empty() {
                return String::new();
            }
            let mut sorted = bufs.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            let items: Vec<String> = sorted.iter().map(|b| b.to_string()).collect();
            format!(" {tag}[{}]", items.join(","))
        }
        let stale = if self.stale_reads.is_empty() {
            String::new()
        } else {
            let mut sorted = self.stale_reads.clone();
            sorted.sort_unstable();
            sorted.dedup();
            let items: Vec<String> = sorted.iter().map(|d| d.to_string()).collect();
            format!(" S[{}]", items.join(","))
        };
        format!("{}{}{}", set("R", &self.reads), set("W", &self.writes), stale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(BufId::new(0, "HW").to_string(), "HW@g0");
        assert_eq!(BufId::indexed(3, "AHW", 1).to_string(), "AHW.1@g3");
    }

    #[test]
    fn builder_and_render() {
        let fx = Effects::none()
            .reads([BufId::new(1, "BC1"), BufId::new(0, "HW")])
            .writes([BufId::indexed(0, "AHW", 0)]);
        assert_eq!(fx.render(), " R[HW@g0,BC1@g1] W[AHW.0@g0]");
        assert!(!fx.is_empty());
        assert!(Effects::none().is_empty());
        assert_eq!(Effects::none().render(), "");
    }

    #[test]
    fn rw_lands_in_both_sets() {
        let fx = Effects::none().rw(BufId::new(0, "HW"));
        assert_eq!(fx.reads, fx.writes);
        assert_eq!(fx.render(), " R[HW@g0] W[HW@g0]");
    }

    #[test]
    fn stale_declaration_renders_and_reads() {
        let sf = BufId::indexed(1, "SF", 0);
        let fx = Effects::none().stale([StaleRead { buf: sf, age: 2 }]);
        assert_eq!(fx.reads, vec![sf], "stale buffers join the read set");
        assert_eq!(fx.render(), " R[SF.0@g1] S[SF.0@g1<=2]");
        assert_eq!(fx.stale_age(sf), Some(2));
        assert_eq!(fx.stale_age(BufId::new(0, "HW")), None);
        // Legacy schedules (no declarations) render exactly as before.
        assert_eq!(Effects::none().render(), "");
    }

    #[test]
    fn render_dedups_and_sorts() {
        let fx =
            Effects::none().reads([BufId::new(0, "HW"), BufId::new(0, "HW"), BufId::new(0, "BC1")]);
        assert_eq!(fx.render(), " R[BC1@g0,HW@g0]");
    }
}
