//! Per-device memory accounting.
//!
//! The paper's capacity results (which datasets fit on how many GPUs, the
//! 20-vs-50 / 150-vs-450 layer counts of Fig 12, the OOM cells of Figs 10
//! and 13 and Table 3) are pure accounting: sum of live allocations versus
//! 32/80 GiB. The tracker enforces exactly that.

use std::collections::BTreeMap;
use std::fmt;

/// Allocation failure: the device would exceed capacity.
#[derive(Debug, Clone, PartialEq)]
pub struct OomError {
    pub gpu: usize,
    pub requested: u64,
    pub in_use: u64,
    pub capacity: u64,
    pub tag: String,
}

impl fmt::Display for OomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "GPU {} out of memory allocating {} MiB for {:?} ({} / {} MiB in use)",
            self.gpu,
            self.requested >> 20,
            self.tag,
            self.in_use >> 20,
            self.capacity >> 20
        )
    }
}

impl std::error::Error for OomError {}

/// Handle to a live allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct AllocId(u64);

/// Memory tracker for one device.
#[derive(Debug, Clone)]
pub struct MemoryTracker {
    gpu: usize,
    capacity: u64,
    in_use: u64,
    peak: u64,
    next_id: u64,
    live: BTreeMap<AllocId, (String, u64)>,
}

impl MemoryTracker {
    pub fn new(gpu: usize, capacity: u64) -> Self {
        Self { gpu, capacity, in_use: 0, peak: 0, next_id: 0, live: BTreeMap::new() }
    }

    /// Reserve `bytes`, failing with [`OomError`] when capacity would be
    /// exceeded. `tag` names the buffer for diagnostics and reports.
    pub fn alloc(&mut self, tag: &str, bytes: u64) -> Result<AllocId, OomError> {
        if self.in_use + bytes > self.capacity {
            return Err(OomError {
                gpu: self.gpu,
                requested: bytes,
                in_use: self.in_use,
                capacity: self.capacity,
                tag: tag.to_string(),
            });
        }
        let id = AllocId(self.next_id);
        self.next_id += 1;
        self.in_use += bytes;
        self.peak = self.peak.max(self.in_use);
        self.live.insert(id, (tag.to_string(), bytes));
        Ok(id)
    }

    /// Release an allocation. Panics on double free (a schedule bug, not a
    /// recoverable condition).
    pub fn free(&mut self, id: AllocId) {
        let (_, bytes) = self.live.remove(&id).expect("free of unknown allocation");
        self.in_use -= bytes;
    }

    pub fn in_use(&self) -> u64 {
        self.in_use
    }

    /// High-water mark — the number the paper's Fig 12 plots.
    pub fn peak(&self) -> u64 {
        self.peak
    }

    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Live allocations as `(tag, bytes)`, largest first.
    pub fn live_report(&self) -> Vec<(String, u64)> {
        let mut v: Vec<(String, u64)> = self.live.values().cloned().collect();
        v.sort_by_key(|e| std::cmp::Reverse(e.1));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_cycle() {
        let mut t = MemoryTracker::new(0, 1000);
        let a = t.alloc("x", 400).unwrap();
        let b = t.alloc("y", 500).unwrap();
        assert_eq!(t.in_use(), 900);
        t.free(a);
        assert_eq!(t.in_use(), 500);
        t.free(b);
        assert_eq!(t.in_use(), 0);
        assert_eq!(t.peak(), 900);
    }

    #[test]
    fn oom_on_exceeding_capacity() {
        let mut t = MemoryTracker::new(3, 100);
        t.alloc("a", 80).unwrap();
        let err = t.alloc("big", 30).unwrap_err();
        assert_eq!(err.gpu, 3);
        assert_eq!(err.in_use, 80);
        assert_eq!(err.requested, 30);
    }

    #[test]
    fn exact_fit_is_allowed() {
        let mut t = MemoryTracker::new(0, 100);
        assert!(t.alloc("a", 100).is_ok());
        assert!(t.alloc("b", 1).is_err());
    }

    #[test]
    fn peak_survives_frees() {
        let mut t = MemoryTracker::new(0, 1000);
        let a = t.alloc("a", 700).unwrap();
        t.free(a);
        t.alloc("b", 100).unwrap();
        assert_eq!(t.peak(), 700);
    }

    #[test]
    #[should_panic(expected = "unknown allocation")]
    fn double_free_panics() {
        let mut t = MemoryTracker::new(0, 100);
        let a = t.alloc("a", 10).unwrap();
        t.free(a);
        t.free(a);
    }

    #[test]
    fn live_report_sorted() {
        let mut t = MemoryTracker::new(0, 1000);
        t.alloc("small", 10).unwrap();
        t.alloc("large", 500).unwrap();
        let report = t.live_report();
        assert_eq!(report[0].0, "large");
        assert_eq!(report[1].1, 10);
    }
}
