//! Machine and GPU specifications.
//!
//! Numbers follow the paper's §6 hardware description: DGX-1 has 8 V100s
//! (32 GB, 900 GB/s HBM, 6 NVLink links of 25 GB/s per direction each,
//! asymmetric hybrid cube mesh); DGX-A100 has 8 A100s (80 GB, 2 TB/s HBM,
//! 12 links through an NVSwitch giving uniform all-to-all bandwidth).

/// One GPU's capabilities.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GpuSpec {
    /// Device memory capacity in bytes.
    pub mem_bytes: u64,
    /// Device memory bandwidth, bytes/second.
    pub mem_bw: f64,
    /// Peak fp32 throughput, FLOP/s.
    pub flops: f64,
    /// Effective last-level cache for SpMM dense-operand reuse, bytes.
    /// Tuned slightly above the physical L2 to account for row-run locality.
    pub l2_bytes: u64,
}

impl GpuSpec {
    /// NVIDIA V100 SXM2 32 GB.
    pub fn v100() -> Self {
        Self {
            mem_bytes: 32 * (1 << 30),
            mem_bw: 900.0e9,
            flops: 15.7e12,
            l2_bytes: 3 * 6 * (1 << 20), // 6 MB L2, ~3x effective for streaming reuse
        }
    }

    /// NVIDIA A100 SXM4 80 GB.
    pub fn a100() -> Self {
        Self {
            mem_bytes: 80 * (1 << 30),
            mem_bw: 2.0e12,
            flops: 19.5e12,
            l2_bytes: 3 * 40 * (1 << 20), // 40 MB L2
        }
    }

    /// NVIDIA H100 SXM5 80 GB — released after the paper; used in what-if
    /// studies of where the next hardware generation moves the bottleneck.
    pub fn h100() -> Self {
        Self {
            mem_bytes: 80 * (1 << 30),
            mem_bw: 3.35e12,
            flops: 66.9e12,
            l2_bytes: 3 * 50 * (1 << 20), // 50 MB L2
        }
    }
}

/// Inter-GPU interconnect topology.
#[derive(Clone, Debug, PartialEq)]
pub enum Interconnect {
    /// Every GPU reaches every other at full fan-out through a switch
    /// (DGX-A100): any collective sees `links_per_gpu × link_bw` per GPU.
    NvSwitch { links_per_gpu: u32, link_bw: f64 },
    /// Direct point-to-point links with per-pair link counts (DGX-1).
    /// `links[i][j]` is the number of links between GPUs `i` and `j`.
    PointToPoint { links: Vec<Vec<u32>>, link_bw: f64 },
    /// Multi-node cluster (the paper's §7 future-work target): full-speed
    /// switched links within a node, a shared NIC between nodes. Any
    /// collective that crosses a node boundary is throttled to the NIC —
    /// the effect that stopped CAGNET from scaling past 4 GPUs (§1).
    Hierarchical {
        gpus_per_node: usize,
        links_per_gpu: u32,
        link_bw: f64,
        /// Per-node network bandwidth, bytes/second (e.g. HDR InfiniBand
        /// ≈ 25 GB/s).
        node_nic_bw: f64,
    },
    /// Point-to-point links (DGX-1-style asymmetric fan-out) spread across
    /// nodes: the per-pair link matrix still applies, but any collective
    /// crossing a node boundary is additionally capped at the NIC. With
    /// `node_nic_bw = ∞` this degenerates to [`Interconnect::PointToPoint`]
    /// exactly — the machine family the 1D/1.5D crossover sweep walks.
    PointToPointCluster {
        links: Vec<Vec<u32>>,
        link_bw: f64,
        gpus_per_node: usize,
        node_nic_bw: f64,
    },
}

/// A single-node multi-GPU machine.
#[derive(Clone, Debug, PartialEq)]
pub struct MachineSpec {
    pub name: String,
    pub gpus: Vec<GpuSpec>,
    pub interconnect: Interconnect,
    /// Per-hop collective latency, seconds.
    pub comm_latency: f64,
}

impl MachineSpec {
    /// NVIDIA DGX-1 with 8 V100s ("DGX-V100" in the paper).
    ///
    /// Hybrid cube mesh: two quads {0..3}, {4..7}. Within a quad each GPU
    /// has 4 links spread over its 3 neighbours; across quads each GPU has
    /// 2 links to its mirror. This reproduces the §5.1 arithmetic exactly:
    /// full-machine broadcast sees 6 links, intra-quad broadcast 4, and the
    /// cross-quad reduction only 2.
    pub fn dgx_v100() -> Self {
        Self {
            name: "DGX-V100".into(),
            gpus: vec![GpuSpec::v100(); 8],
            interconnect: Interconnect::PointToPoint {
                links: Self::hybrid_cube_mesh_links(),
                link_bw: 25.0e9,
            },
            comm_latency: 10.0e-6,
        }
    }

    /// The DGX-1 hybrid cube mesh link matrix: two quads {0..3}, {4..7},
    /// 4 links per GPU within its quad and 2 to its cross-quad mirror.
    fn hybrid_cube_mesh_links() -> Vec<Vec<u32>> {
        let mut links = vec![vec![0u32; 8]; 8];
        let mut connect = |a: usize, b: usize, n: u32| {
            links[a][b] = n;
            links[b][a] = n;
        };
        for quad in [0usize, 4] {
            // Within each quad: one double link per GPU + two single links.
            connect(quad, quad + 1, 1);
            connect(quad, quad + 2, 1);
            connect(quad, quad + 3, 2);
            connect(quad + 1, quad + 2, 2);
            connect(quad + 1, quad + 3, 1);
            connect(quad + 2, quad + 3, 1);
        }
        for i in 0..4 {
            // Mirror links between the quads.
            connect(i, i + 4, 2);
        }
        links
    }

    /// A DGX-1-like machine whose two quads live on separate *nodes*: the
    /// hybrid cube mesh link fan-out still applies, but any collective that
    /// crosses the quad boundary is additionally capped at `node_nic_bw`.
    /// With an infinite NIC this is bandwidth-identical to [`dgx_v100`];
    /// lowering the NIC sweeps out the exact 1D/1.5D crossover, because the
    /// 1D pipeline's full-machine broadcasts cross nodes every stage while
    /// 1.5D only crosses during its cross-group reduction.
    ///
    /// [`dgx_v100`]: MachineSpec::dgx_v100
    pub fn v100_quad_cluster(node_nic_bw: f64) -> Self {
        Self::quad_cluster("V100-quad-cluster", GpuSpec::v100(), node_nic_bw)
    }

    /// Same split-quad topology but with A100-class GPUs — the machine the
    /// papers100M-scale end-to-end sweep runs on (the dataset does not fit
    /// 32 GB V100s at P=8 under the 1.5D replication budget).
    pub fn a100_quad_cluster(node_nic_bw: f64) -> Self {
        Self::quad_cluster("A100-quad-cluster", GpuSpec::a100(), node_nic_bw)
    }

    fn quad_cluster(name: &str, gpu: GpuSpec, node_nic_bw: f64) -> Self {
        assert!(node_nic_bw > 0.0, "NIC bandwidth must be positive");
        Self {
            name: name.into(),
            gpus: vec![gpu; 8],
            interconnect: Interconnect::PointToPointCluster {
                links: Self::hybrid_cube_mesh_links(),
                link_bw: 25.0e9,
                gpus_per_node: 4,
                node_nic_bw,
            },
            comm_latency: 10.0e-6,
        }
    }

    /// NVIDIA DGX-A100 (8× A100, NVSwitch, 12 links per GPU).
    pub fn dgx_a100() -> Self {
        Self {
            name: "DGX-A100".into(),
            gpus: vec![GpuSpec::a100(); 8],
            interconnect: Interconnect::NvSwitch { links_per_gpu: 12, link_bw: 25.0e9 },
            comm_latency: 8.0e-6,
        }
    }

    /// A uniform custom machine (testing / what-if studies).
    pub fn uniform(
        name: &str,
        gpu: GpuSpec,
        count: usize,
        links_per_gpu: u32,
        link_bw: f64,
    ) -> Self {
        Self {
            name: name.into(),
            gpus: vec![gpu; count],
            interconnect: Interconnect::NvSwitch { links_per_gpu, link_bw },
            comm_latency: 10.0e-6,
        }
    }

    /// A cluster of `nodes` DGX-A100-like nodes connected by a per-node NIC
    /// of `node_nic_bw` bytes/second — the §7 multi-node future-work
    /// scenario. GPU indices are node-major: GPUs `0..8` are node 0, etc.
    pub fn a100_cluster(nodes: usize, node_nic_bw: f64) -> Self {
        Self::hier_cluster(
            &format!("{nodes}x DGX-A100 cluster"),
            GpuSpec::a100(),
            nodes,
            8,
            12,
            25.0e9,
            node_nic_bw,
        )
    }

    /// An arbitrary hierarchical cluster: `nodes` nodes of `gpus_per_node`
    /// GPUs each, switched at `links_per_gpu × link_bw` within a node and
    /// capped at `node_nic_bw` across nodes. GPU indices are node-major
    /// (GPU `g` lives on node `g / gpus_per_node`), which is the layout the
    /// 1.5D pipeline's replication groups align with.
    pub fn hier_cluster(
        name: &str,
        gpu: GpuSpec,
        nodes: usize,
        gpus_per_node: usize,
        links_per_gpu: u32,
        link_bw: f64,
        node_nic_bw: f64,
    ) -> Self {
        assert!(nodes > 0 && gpus_per_node > 0, "cluster needs at least one GPU");
        Self {
            name: name.into(),
            gpus: vec![gpu; nodes * gpus_per_node],
            interconnect: Interconnect::Hierarchical {
                gpus_per_node,
                links_per_gpu,
                link_bw,
                node_nic_bw,
            },
            comm_latency: 8.0e-6,
        }
    }

    pub fn gpu_count(&self) -> usize {
        self.gpus.len()
    }

    /// Number of links `root` has toward the members of `group`
    /// (excluding itself).
    pub fn effective_links(&self, root: usize, group: &[usize]) -> u32 {
        match &self.interconnect {
            Interconnect::NvSwitch { links_per_gpu, .. }
            | Interconnect::Hierarchical { links_per_gpu, .. } => {
                if group.iter().any(|&g| g != root) {
                    *links_per_gpu
                } else {
                    0
                }
            }
            Interconnect::PointToPoint { links, .. }
            | Interconnect::PointToPointCluster { links, .. } => {
                group.iter().filter(|&&g| g != root).map(|&g| links[root][g]).sum()
            }
        }
    }

    /// Node index hosting GPU `g` (always 0 on single-node machines).
    pub fn node_of(&self, g: usize) -> usize {
        match &self.interconnect {
            Interconnect::Hierarchical { gpus_per_node, .. }
            | Interconnect::PointToPointCluster { gpus_per_node, .. } => g / gpus_per_node,
            _ => 0,
        }
    }

    /// Number of nodes in the machine (1 unless hierarchical).
    pub fn node_count(&self) -> usize {
        match &self.interconnect {
            Interconnect::Hierarchical { gpus_per_node, .. }
            | Interconnect::PointToPointCluster { gpus_per_node, .. } => {
                self.gpus.len().div_ceil(*gpus_per_node)
            }
            _ => 1,
        }
    }

    /// Whether `group` spans more than one node (single-node machines never
    /// do). Trace consumers use this to split comm bytes into intra- vs
    /// inter-node traffic.
    pub fn crosses_nodes(&self, group: &[usize]) -> bool {
        match &self.interconnect {
            Interconnect::Hierarchical { gpus_per_node, .. }
            | Interconnect::PointToPointCluster { gpus_per_node, .. } => {
                let mut nodes = group.iter().map(|g| g / gpus_per_node);
                let first = nodes.next();
                nodes.any(|n| Some(n) != first)
            }
            _ => false,
        }
    }

    /// The inter-node cap that applies when a collective crosses nodes.
    fn nic_cap(&self) -> f64 {
        match &self.interconnect {
            Interconnect::Hierarchical { node_nic_bw, .. }
            | Interconnect::PointToPointCluster { node_nic_bw, .. } => *node_nic_bw,
            _ => f64::INFINITY,
        }
    }

    fn link_bw(&self) -> f64 {
        match &self.interconnect {
            Interconnect::NvSwitch { link_bw, .. }
            | Interconnect::PointToPoint { link_bw, .. }
            | Interconnect::Hierarchical { link_bw, .. }
            | Interconnect::PointToPointCluster { link_bw, .. } => *link_bw,
        }
    }

    /// Bandwidth available to a broadcast from `root` to `group`
    /// (bytes/second). NCCL pipelines the payload over every usable link of
    /// the root, which is the model the paper's §5.1 analysis uses.
    pub fn broadcast_bw(&self, root: usize, group: &[usize]) -> f64 {
        let l = self.effective_links(root, group);
        if l == 0 {
            f64::INFINITY // single-GPU "broadcast" is a no-op
        } else {
            let intra = l as f64 * self.link_bw();
            if self.crosses_nodes(group) {
                intra.min(self.nic_cap())
            } else {
                intra
            }
        }
    }

    /// Bandwidth for a reduction onto `root` — symmetric to broadcast.
    pub fn reduce_bw(&self, root: usize, group: &[usize]) -> f64 {
        self.broadcast_bw(root, group)
    }

    /// Ring all-reduce bandwidth over `group`: limited by the member with
    /// the fewest links into the group.
    pub fn allreduce_bw(&self, group: &[usize]) -> f64 {
        if group.len() <= 1 {
            return f64::INFINITY;
        }
        let min_links =
            group.iter().map(|&g| self.effective_links(g, group)).min().expect("nonempty group");
        let intra = min_links as f64 * self.link_bw();
        if self.crosses_nodes(group) {
            intra.min(self.nic_cap())
        } else {
            intra
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dgx_v100_each_gpu_has_six_links() {
        let m = MachineSpec::dgx_v100();
        let all: Vec<usize> = (0..8).collect();
        for g in 0..8 {
            assert_eq!(m.effective_links(g, &all), 6, "gpu {g}");
        }
    }

    #[test]
    fn dgx_v100_quad_has_four_links_cross_has_two() {
        // The §5.1 numbers: intra-quad broadcast 4 links, cross-quad 2.
        let m = MachineSpec::dgx_v100();
        let quad: Vec<usize> = (0..4).collect();
        assert_eq!(m.effective_links(0, &quad), 4);
        assert_eq!(m.effective_links(2, &quad), 4);
        let cross = vec![0usize, 4];
        assert_eq!(m.effective_links(0, &cross), 2);
    }

    #[test]
    fn dgx_a100_uniform_twelve_links() {
        let m = MachineSpec::dgx_a100();
        let all: Vec<usize> = (0..8).collect();
        assert_eq!(m.effective_links(3, &all), 12);
        let pair = vec![1usize, 2];
        assert_eq!(m.effective_links(1, &pair), 12);
    }

    #[test]
    fn broadcast_bw_scales_with_links() {
        let m = MachineSpec::dgx_v100();
        let all: Vec<usize> = (0..8).collect();
        assert!((m.broadcast_bw(0, &all) - 150.0e9).abs() < 1.0);
        let a = MachineSpec::dgx_a100();
        assert!((a.broadcast_bw(0, &all) - 300.0e9).abs() < 1.0);
    }

    #[test]
    fn single_gpu_collectives_are_free() {
        let m = MachineSpec::dgx_a100();
        assert!(m.broadcast_bw(0, &[0]).is_infinite());
        assert!(m.allreduce_bw(&[5]).is_infinite());
    }

    #[test]
    fn cluster_throttles_cross_node_collectives() {
        let m = MachineSpec::a100_cluster(2, 25.0e9);
        assert_eq!(m.gpu_count(), 16);
        // Within node 0: full NVSwitch bandwidth.
        let intra: Vec<usize> = (0..8).collect();
        assert!((m.broadcast_bw(0, &intra) - 300.0e9).abs() < 1.0);
        // Across nodes: capped at the NIC.
        let cross: Vec<usize> = (0..16).collect();
        assert!((m.broadcast_bw(0, &cross) - 25.0e9).abs() < 1.0);
        assert!((m.allreduce_bw(&cross) - 25.0e9).abs() < 1.0);
    }

    #[test]
    fn single_node_cluster_behaves_like_dgx() {
        let c = MachineSpec::a100_cluster(1, 25.0e9);
        let d = MachineSpec::dgx_a100();
        let all: Vec<usize> = (0..8).collect();
        assert_eq!(c.broadcast_bw(0, &all), d.broadcast_bw(0, &all));
    }

    #[test]
    fn hier_cluster_node_geometry() {
        let m = MachineSpec::hier_cluster("2x2", GpuSpec::a100(), 2, 2, 12, 25.0e9, 12.5e9);
        assert_eq!(m.gpu_count(), 4);
        assert_eq!(m.node_count(), 2);
        assert_eq!([0, 1, 2, 3].map(|g| m.node_of(g)), [0, 0, 1, 1]);
        assert!(!m.crosses_nodes(&[0, 1]));
        assert!(m.crosses_nodes(&[1, 2]));
        // Intra-node pair: full switch bandwidth; cross-node pair: the NIC.
        assert!((m.broadcast_bw(0, &[0, 1]) - 300.0e9).abs() < 1.0);
        assert!((m.broadcast_bw(0, &[0, 2]) - 12.5e9).abs() < 1.0);
        // a100_cluster is the 8-GPU special case of the same constructor.
        let a = MachineSpec::a100_cluster(2, 25.0e9);
        assert_eq!(a.node_count(), 2);
        assert_eq!(a.node_of(7), 0);
        assert_eq!(a.node_of(8), 1);
        // Single-node machines report one node and never cross.
        let d = MachineSpec::dgx_v100();
        assert_eq!(d.node_count(), 1);
        assert_eq!(d.node_of(5), 0);
        assert!(!d.crosses_nodes(&[0, 7]));
    }

    #[test]
    fn quad_cluster_with_infinite_nic_matches_dgx_v100() {
        let c = MachineSpec::v100_quad_cluster(f64::INFINITY);
        let d = MachineSpec::dgx_v100();
        let all: Vec<usize> = (0..8).collect();
        let quad: Vec<usize> = (0..4).collect();
        for g in 0..8 {
            assert_eq!(c.effective_links(g, &all), d.effective_links(g, &all));
            assert_eq!(c.broadcast_bw(g, &all), d.broadcast_bw(g, &all));
        }
        assert_eq!(c.broadcast_bw(0, &quad), d.broadcast_bw(0, &quad));
        assert_eq!(c.allreduce_bw(&all), d.allreduce_bw(&all));
        // But the cluster knows its quads are nodes; the DGX does not.
        assert_eq!(c.node_count(), 2);
        assert_eq!(c.node_of(3), 0);
        assert_eq!(c.node_of(4), 1);
        assert!(c.crosses_nodes(&[0, 4]));
        assert_eq!(d.node_count(), 1);
    }

    #[test]
    fn quad_cluster_nic_caps_only_cross_node_collectives() {
        let nic = 10.0e9;
        let m = MachineSpec::v100_quad_cluster(nic);
        let all: Vec<usize> = (0..8).collect();
        let quad: Vec<usize> = (0..4).collect();
        // Intra-quad broadcast: unchanged 4 links × 25 GB/s.
        assert!((m.broadcast_bw(0, &quad) - 100.0e9).abs() < 1.0);
        // Full-machine broadcast crosses the node boundary: NIC-capped.
        assert!((m.broadcast_bw(0, &all) - nic).abs() < 1.0);
        // Cross-quad pair reduction: min(2 links × 25 GB/s, NIC).
        assert!((m.reduce_bw(0, &[0, 4]) - nic).abs() < 1.0);
        // With a fast NIC the link fan-out is the binding constraint again.
        let fast = MachineSpec::v100_quad_cluster(400.0e9);
        assert!((fast.broadcast_bw(0, &all) - 150.0e9).abs() < 1.0);
        assert!((fast.reduce_bw(0, &[0, 4]) - 50.0e9).abs() < 1.0);
        // A100 variant: same topology, bigger memory for papers100M sweeps.
        let a = MachineSpec::a100_quad_cluster(nic);
        assert_eq!(a.gpus[0].mem_bytes, GpuSpec::a100().mem_bytes);
        assert!((a.broadcast_bw(0, &all) - nic).abs() < 1.0);
    }

    #[test]
    fn paper_51_analysis_ratio() {
        // §5.1: on DGX-1 the 1D algorithm moves n·d bytes at 6 links while
        // 1.5D pays 2 intra-quad broadcasts (4 links, double speed groups)
        // plus a cross reduction at 2 links; 1D wins by 3/2.
        let m = MachineSpec::dgx_v100();
        let nd: f64 = 1.0e9; // arbitrary payload
        let l: f64 = 25.0e9;
        let t_1d = 8.0 * nd / (8.0 * 6.0 * l);
        let t_15d = 2.0 * nd / (4.0 * 4.0 * l) + nd / (4.0 * 2.0 * l);
        assert!((t_15d / t_1d - 1.5).abs() < 1e-9);
        // And the machine spec exposes exactly those link counts.
        assert_eq!(m.effective_links(0, &[0, 1, 2, 3]), 4);
        assert_eq!(m.effective_links(0, &[0, 4]), 2);
    }
}
