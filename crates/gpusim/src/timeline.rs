//! Timeline recording and aggregation.
//!
//! Every completed op leaves a [`Span`]; Figs 5 (per-category runtime
//! breakdown), 6 and 8 (per-stage SpMM timelines) are views over these.

/// Kernel category, matching the paper's Fig 5 legend plus `Comm`.
///
/// `Barrier` is reserved for wait time measured by the threaded backend
/// (rendezvous arrivals, dependency waits): schedules never launch ops in
/// this category, so per-category sums cleanly separate useful work from
/// synchronization stalls.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Category {
    SpMM,
    GeMM,
    Activation,
    Adam,
    LossLayer,
    Comm,
    Barrier,
    Other,
}

impl Category {
    pub const ALL: [Category; 8] = [
        Category::SpMM,
        Category::GeMM,
        Category::Activation,
        Category::Adam,
        Category::LossLayer,
        Category::Comm,
        Category::Barrier,
        Category::Other,
    ];

    pub fn name(&self) -> &'static str {
        match self {
            Category::SpMM => "SpMM",
            Category::GeMM => "GeMM",
            Category::Activation => "Activation",
            Category::Adam => "Adam",
            Category::LossLayer => "Loss-Layer",
            Category::Comm => "Comm",
            Category::Barrier => "Barrier",
            Category::Other => "Other",
        }
    }
}

/// One executed op on one GPU's stream.
#[derive(Clone, Debug)]
pub struct Span {
    pub gpu: usize,
    pub stream: usize,
    pub category: Category,
    /// Broadcast stage index for the staged SpMM, when applicable
    /// (drives the stage annotations of Figs 6 and 8).
    pub stage: Option<usize>,
    pub label: &'static str,
    pub start: f64,
    pub end: f64,
    /// Schedule op id that produced this span. Collectives leave one span
    /// per participating lane, all sharing the id — consumers counting
    /// payload bytes must dedup on it.
    pub op: usize,
    /// Bytes moved by the op: payload for `Work::Comm`, memory traffic for
    /// `Work::Compute`, 0 for `Work::Fixed`.
    pub bytes: f64,
    /// Number of logical buffers the op declared it reads (see
    /// `crate::effects`); 0 when the op carries no effect annotations.
    pub reads: u32,
    /// Number of logical buffers the op declared it writes.
    pub writes: u32,
    /// Training epoch the op belongs to, for fused multi-epoch (bounded
    /// staleness) schedules. `None` for single-epoch schedules.
    pub epoch: Option<usize>,
}

impl Span {
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// An ordered collection of spans with aggregation helpers.
#[derive(Clone, Debug, Default)]
pub struct Timeline {
    pub spans: Vec<Span>,
}

impl Timeline {
    /// Total busy time per category, summed over all GPUs and streams.
    /// This is the paper's Fig 5 statistic (communication hidden inside the
    /// SpMM pipeline is attributed to `Comm`).
    pub fn category_totals(&self) -> Vec<(Category, f64)> {
        let mut totals = Category::ALL.map(|c| (c, 0.0f64));
        for s in &self.spans {
            let slot = totals.iter_mut().find(|(c, _)| *c == s.category).expect("category in ALL");
            slot.1 += s.duration();
        }
        totals.into_iter().filter(|(_, t)| *t > 0.0).collect()
    }

    /// Percentage breakdown per category (sums to 100).
    pub fn category_percentages(&self) -> Vec<(Category, f64)> {
        let totals = self.category_totals();
        let sum: f64 = totals.iter().map(|(_, t)| t).sum();
        if sum == 0.0 {
            return vec![];
        }
        totals.into_iter().map(|(c, t)| (c, 100.0 * t / sum)).collect()
    }

    /// Spans of one GPU and stream, in start order.
    pub fn lane(&self, gpu: usize, stream: usize) -> Vec<&Span> {
        let mut v: Vec<&Span> =
            self.spans.iter().filter(|s| s.gpu == gpu && s.stream == stream).collect();
        v.sort_by(|a, b| a.start.total_cmp(&b.start));
        v
    }

    /// Latest end time (the makespan if recording started at 0).
    pub fn end_time(&self) -> f64 {
        self.spans.iter().map(|s| s.end).fold(0.0, f64::max)
    }

    /// Busy time of one category on one GPU.
    pub fn gpu_category_time(&self, gpu: usize, category: Category) -> f64 {
        self.spans
            .iter()
            .filter(|s| s.gpu == gpu && s.category == category)
            .map(Span::duration)
            .sum()
    }

    /// Render lanes as a proportional ASCII Gantt chart (Figs 6 / 8 style):
    /// one row per (gpu, stream), `#` compute / `~` comm, stage digits when
    /// present.
    pub fn ascii_gantt(&self, width: usize) -> String {
        let end = self.end_time();
        if end == 0.0 {
            return String::new();
        }
        let mut lanes: Vec<(usize, usize)> = self
            .spans
            .iter()
            .map(|s| (s.gpu, s.stream))
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        lanes.sort_unstable();
        let mut out = String::new();
        for (gpu, stream) in lanes {
            let mut row = vec![' '; width];
            for s in self.lane(gpu, stream) {
                let a = ((s.start / end) * width as f64) as usize;
                let b = (((s.end / end) * width as f64).ceil() as usize).clamp(a + 1, width);
                let glyph = match (s.category, s.stage) {
                    (Category::Comm, Some(st)) => {
                        char::from_digit((st % 10) as u32, 10).unwrap_or('~')
                    }
                    (Category::Comm, None) => '~',
                    (_, Some(st)) => char::from_digit((st % 10) as u32, 10).unwrap_or('#'),
                    _ => '#',
                };
                for cell in row.iter_mut().take(b.min(width)).skip(a) {
                    *cell = glyph;
                }
            }
            out.push_str(&format!("GPU {gpu} s{stream} |"));
            out.extend(row);
            out.push_str("|\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(gpu: usize, cat: Category, start: f64, end: f64) -> Span {
        Span {
            gpu,
            stream: 0,
            category: cat,
            stage: None,
            label: "t",
            start,
            end,
            op: 0,
            bytes: 0.0,
            reads: 0,
            writes: 0,
            epoch: None,
        }
    }

    #[test]
    fn category_totals_sum_durations() {
        let tl = Timeline {
            spans: vec![
                span(0, Category::SpMM, 0.0, 2.0),
                span(1, Category::SpMM, 0.0, 3.0),
                span(0, Category::GeMM, 2.0, 3.0),
            ],
        };
        let totals = tl.category_totals();
        assert_eq!(totals.len(), 2);
        let spmm = totals.iter().find(|(c, _)| *c == Category::SpMM).unwrap().1;
        assert!((spmm - 5.0).abs() < 1e-12);
    }

    #[test]
    fn percentages_sum_to_hundred() {
        let tl = Timeline {
            spans: vec![span(0, Category::SpMM, 0.0, 3.0), span(0, Category::Adam, 3.0, 4.0)],
        };
        let pct: f64 = tl.category_percentages().iter().map(|(_, p)| p).sum();
        assert!((pct - 100.0).abs() < 1e-9);
    }

    #[test]
    fn lane_filters_and_sorts() {
        let mut tl = Timeline::default();
        tl.spans.push(span(0, Category::SpMM, 5.0, 6.0));
        tl.spans.push(span(0, Category::SpMM, 1.0, 2.0));
        tl.spans.push(span(1, Category::SpMM, 0.0, 1.0));
        let lane = tl.lane(0, 0);
        assert_eq!(lane.len(), 2);
        assert!(lane[0].start < lane[1].start);
    }

    #[test]
    fn gantt_renders_rows() {
        let tl = Timeline {
            spans: vec![span(0, Category::SpMM, 0.0, 1.0), span(1, Category::Comm, 0.0, 0.5)],
        };
        let g = tl.ascii_gantt(20);
        assert!(g.contains("GPU 0"));
        assert!(g.contains("GPU 1"));
        assert!(g.contains('#'));
        assert!(g.contains('~'));
    }

    #[test]
    fn empty_timeline_is_harmless() {
        let tl = Timeline::default();
        assert!(tl.category_percentages().is_empty());
        assert_eq!(tl.end_time(), 0.0);
        assert_eq!(tl.ascii_gantt(10), "");
    }
}
