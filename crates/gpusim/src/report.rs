//! nvprof-style profiling reports over a [`Timeline`].
//!
//! The paper identified its bottlenecks by profiling "single GPU GCN
//! training with nvprof" (§4). This module renders the same view from the
//! engine's timeline: per-kernel-label statistics (invocations, total/avg
//! time, share of busy time), per-GPU busy/idle utilization, and exposed
//! (non-overlapped) communication time.

use crate::timeline::{Category, Timeline};
use std::collections::BTreeMap;

/// Aggregated statistics for one kernel label.
#[derive(Clone, Debug, PartialEq)]
pub struct KernelStats {
    pub label: &'static str,
    pub category: Category,
    pub calls: usize,
    pub total_seconds: f64,
    pub max_seconds: f64,
}

impl KernelStats {
    pub fn avg_seconds(&self) -> f64 {
        self.total_seconds / self.calls.max(1) as f64
    }
}

/// A rendered profile of one run.
#[derive(Clone, Debug)]
pub struct Profile {
    pub kernels: Vec<KernelStats>,
    /// Per-GPU (busy compute seconds, busy comm seconds).
    pub gpu_busy: Vec<(f64, f64)>,
    pub makespan: f64,
}

impl Profile {
    /// Aggregate a timeline (with its makespan) into a profile.
    pub fn from_timeline(tl: &Timeline, makespan: f64) -> Self {
        let mut by_label: BTreeMap<&'static str, KernelStats> = BTreeMap::new();
        let gpu_count = tl.spans.iter().map(|s| s.gpu + 1).max().unwrap_or(0);
        let mut gpu_busy = vec![(0.0f64, 0.0f64); gpu_count];
        for s in &tl.spans {
            let e = by_label.entry(s.label).or_insert(KernelStats {
                label: s.label,
                category: s.category,
                calls: 0,
                total_seconds: 0.0,
                max_seconds: 0.0,
            });
            e.calls += 1;
            e.total_seconds += s.duration();
            e.max_seconds = e.max_seconds.max(s.duration());
            let slot = &mut gpu_busy[s.gpu];
            if s.category == Category::Comm {
                slot.1 += s.duration();
            } else {
                slot.0 += s.duration();
            }
        }
        let mut kernels: Vec<KernelStats> = by_label.into_values().collect();
        kernels.sort_by(|a, b| b.total_seconds.total_cmp(&a.total_seconds));
        Self { kernels, gpu_busy, makespan }
    }

    /// Total busy kernel time (all GPUs, compute categories only).
    pub fn total_compute(&self) -> f64 {
        self.gpu_busy.iter().map(|(c, _)| c).sum()
    }

    /// Mean compute utilization across GPUs (busy / makespan).
    pub fn utilization(&self) -> f64 {
        if self.makespan == 0.0 || self.gpu_busy.is_empty() {
            return 0.0;
        }
        self.total_compute() / (self.makespan * self.gpu_busy.len() as f64)
    }

    /// Render as an nvprof-like text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<14} {:>7} {:>12} {:>12} {:>12} {:>8}\n",
            "kernel", "calls", "total (ms)", "avg (us)", "max (us)", "share"
        ));
        let grand: f64 = self.kernels.iter().map(|k| k.total_seconds).sum();
        for k in &self.kernels {
            out.push_str(&format!(
                "{:<14} {:>7} {:>12.3} {:>12.1} {:>12.1} {:>7.1}%\n",
                k.label,
                k.calls,
                k.total_seconds * 1e3,
                k.avg_seconds() * 1e6,
                k.max_seconds * 1e6,
                100.0 * k.total_seconds / grand.max(f64::MIN_POSITIVE)
            ));
        }
        out.push_str(&format!(
            "\nmakespan {:.3} ms, mean compute utilization {:.1}%\n",
            self.makespan * 1e3,
            self.utilization() * 100.0
        ));
        for (g, (compute, comm)) in self.gpu_busy.iter().enumerate() {
            out.push_str(&format!(
                "  GPU {g}: compute {:>8.3} ms, comm {:>8.3} ms\n",
                compute * 1e3,
                comm * 1e3
            ));
        }
        out
    }
}

/// Online latency accounting for serving-style workloads: collects
/// per-request latencies and reports count/mean/quantiles. Quantiles use
/// the nearest-rank method on the sorted sample set, so p50/p95/p99 are
/// actual observed latencies, not interpolations.
#[derive(Clone, Debug, Default)]
pub struct LatencyStats {
    samples: Vec<f64>,
    sorted: bool,
}

impl LatencyStats {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one latency observation (seconds).
    pub fn record(&mut self, seconds: f64) {
        self.samples.push(seconds);
        self.sorted = false;
    }

    /// Fold another collection into this one — cluster-wide quantiles are
    /// computed over the union of per-shard samples, not averaged.
    pub fn merge(&mut self, other: &LatencyStats) {
        self.samples.extend_from_slice(&other.samples);
        self.sorted = false;
    }

    /// The raw observations, in insertion (not sorted) order unless a
    /// quantile has been taken since the last record/merge.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    pub fn count(&self) -> usize {
        self.samples.len()
    }

    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    pub fn max(&self) -> f64 {
        self.samples.iter().cloned().fold(0.0, f64::max)
    }

    /// Nearest-rank quantile, `q` in `[0, 1]`. Returns 0 with no samples.
    pub fn quantile(&mut self, q: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        if !self.sorted {
            self.samples.sort_by(f64::total_cmp);
            self.sorted = true;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.samples.len() as f64).ceil() as usize)
            .clamp(1, self.samples.len());
        self.samples[rank - 1]
    }

    pub fn p50(&mut self) -> f64 {
        self.quantile(0.50)
    }

    pub fn p95(&mut self) -> f64 {
        self.quantile(0.95)
    }

    pub fn p99(&mut self) -> f64 {
        self.quantile(0.99)
    }

    /// One-line human-readable summary (milliseconds).
    pub fn render(&mut self) -> String {
        format!(
            "n={} mean={:.3}ms p50={:.3}ms p95={:.3}ms p99={:.3}ms max={:.3}ms",
            self.count(),
            self.mean() * 1e3,
            self.p50() * 1e3,
            self.p95() * 1e3,
            self.p99() * 1e3,
            self.max() * 1e3,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeline::Span;

    fn tl() -> Timeline {
        Timeline {
            spans: vec![
                Span {
                    gpu: 0,
                    stream: 0,
                    category: Category::SpMM,
                    stage: None,
                    label: "spmm",
                    start: 0.0,
                    end: 2.0,
                    op: 0,
                    bytes: 0.0,
                    reads: 0,
                    writes: 0,
                    epoch: None,
                },
                Span {
                    gpu: 0,
                    stream: 0,
                    category: Category::SpMM,
                    stage: None,
                    label: "spmm",
                    start: 2.0,
                    end: 3.0,
                    op: 1,
                    bytes: 0.0,
                    reads: 0,
                    writes: 0,
                    epoch: None,
                },
                Span {
                    gpu: 1,
                    stream: 1,
                    category: Category::Comm,
                    stage: None,
                    label: "bcast",
                    start: 0.0,
                    end: 1.0,
                    op: 2,
                    bytes: 0.0,
                    reads: 0,
                    writes: 0,
                    epoch: None,
                },
            ],
        }
    }

    #[test]
    fn kernel_stats_aggregate() {
        let p = Profile::from_timeline(&tl(), 3.0);
        assert_eq!(p.kernels.len(), 2);
        let spmm = &p.kernels[0]; // sorted by total time desc
        assert_eq!(spmm.label, "spmm");
        assert_eq!(spmm.calls, 2);
        assert!((spmm.total_seconds - 3.0).abs() < 1e-12);
        assert!((spmm.avg_seconds() - 1.5).abs() < 1e-12);
        assert!((spmm.max_seconds - 2.0).abs() < 1e-12);
    }

    #[test]
    fn busy_split_by_category() {
        let p = Profile::from_timeline(&tl(), 3.0);
        assert_eq!(p.gpu_busy.len(), 2);
        assert!((p.gpu_busy[0].0 - 3.0).abs() < 1e-12);
        assert_eq!(p.gpu_busy[0].1, 0.0);
        assert!((p.gpu_busy[1].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn utilization_is_fractional() {
        let p = Profile::from_timeline(&tl(), 3.0);
        // GPU0 busy 3/3, GPU1 compute 0/3 -> mean 0.5.
        assert!((p.utilization() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn render_contains_rows() {
        let text = Profile::from_timeline(&tl(), 3.0).render();
        assert!(text.contains("spmm"));
        assert!(text.contains("bcast"));
        assert!(text.contains("utilization"));
    }

    #[test]
    fn empty_timeline_profile() {
        let p = Profile::from_timeline(&Timeline::default(), 0.0);
        assert!(p.kernels.is_empty());
        assert_eq!(p.utilization(), 0.0);
    }

    #[test]
    fn latency_quantiles_nearest_rank() {
        let mut l = LatencyStats::new();
        // Record 1..=100 ms out of order.
        for i in (1..=100u32).rev() {
            l.record(i as f64 * 1e-3);
        }
        assert_eq!(l.count(), 100);
        assert!((l.p50() - 0.050).abs() < 1e-12);
        assert!((l.p95() - 0.095).abs() < 1e-12);
        assert!((l.p99() - 0.099).abs() < 1e-12);
        assert!((l.quantile(1.0) - 0.100).abs() < 1e-12);
        assert!((l.mean() - 0.0505).abs() < 1e-12);
        assert!((l.max() - 0.100).abs() < 1e-12);
    }

    #[test]
    fn latency_empty_is_zero() {
        let mut l = LatencyStats::new();
        assert_eq!(l.count(), 0);
        assert_eq!(l.p99(), 0.0);
        assert_eq!(l.mean(), 0.0);
    }

    #[test]
    fn latency_single_sample() {
        let mut l = LatencyStats::new();
        l.record(0.25);
        assert_eq!(l.p50(), 0.25);
        assert_eq!(l.p99(), 0.25);
        assert!(l.render().contains("n=1"));
    }
}
