//! Roofline cost models for the GCN kernel zoo.
//!
//! The paper's performance story rests on three facts the model must
//! capture (§6.1, §6.3, §6.4):
//!
//! 1. **SpMM is memory-bandwidth bound** (60–94% of runtime on large
//!    graphs), with DRAM traffic dominated by re-reads of the dense operand
//!    `B`; how much of that re-read traffic hits L2 depends on the tile's
//!    working set — smaller per-GPU tiles fit better, which is the paper's
//!    explanation for the super-linear speedups of Fig 9 ("the blocking
//!    effect of partitioning and potentially better use of the cache").
//! 2. **GeMM is FLOP bound** at these sizes.
//! 3. Communication time depends only on matrix dimensions, while SpMM
//!    compute also scales with density — so compute overtakes comm as the
//!    average degree grows (§6.4 crossover).

use crate::engine::Work;
use crate::specs::GpuSpec;

/// Tunable efficiencies, shared by MG-GCN and the baselines (the baselines
/// differ in schedule and buffer behaviour, not in silicon).
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// Fraction of peak FLOPs a well-tuned GeMM achieves.
    pub gemm_efficiency: f64,
    /// Fraction of peak DRAM bandwidth SpMM achieves (irregular access).
    pub spmm_efficiency: f64,
    /// Fraction of peak DRAM bandwidth elementwise kernels achieve.
    pub streaming_efficiency: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self { gemm_efficiency: 0.65, spmm_efficiency: 0.55, streaming_efficiency: 0.85 }
    }
}

impl CostModel {
    /// SpMM `A(rows×cols, nnz) × B(cols×d) → C(rows×d)`.
    ///
    /// DRAM traffic:
    /// * CSR structure: `nnz · 8` (index + value) + `rows · 8` (row ptr);
    /// * `B` reads: each referenced row is loaded at least once
    ///   (`cols · d · 4` compulsory); the remaining `(nnz − cols) · d · 4`
    ///   re-reads miss L2 with probability `ws / (ws + l2)` where
    ///   `ws = cols · d · 4` is the tile working set — a smooth stand-in
    ///   for the reuse-distance distribution;
    /// * `C` writes: `rows · d · 4` (doubled when accumulating).
    pub fn spmm(
        &self,
        gpu: &GpuSpec,
        rows: u64,
        cols: u64,
        nnz: u64,
        d: u64,
        accumulate: bool,
    ) -> Work {
        let csr_bytes = nnz as f64 * 8.0 + rows as f64 * 8.0;
        let ws = cols as f64 * d as f64 * 4.0;
        let compulsory = ws;
        let rereads = ((nnz as f64 - cols as f64).max(0.0)) * d as f64 * 4.0;
        let miss = ws / (ws + gpu.l2_bytes as f64);
        let b_bytes = compulsory + rereads * miss;
        let c_factor = if accumulate { 2.0 } else { 1.0 };
        let c_bytes = rows as f64 * d as f64 * 4.0 * c_factor;
        let bytes = (csr_bytes + b_bytes + c_bytes) / self.spmm_efficiency;
        let flops = 2.0 * nnz as f64 * d as f64;
        Work::Compute { flops, bytes }
    }

    /// Dense GeMM `m × k × n`.
    pub fn gemm(&self, _gpu: &GpuSpec, m: u64, k: u64, n: u64) -> Work {
        let flops = 2.0 * m as f64 * k as f64 * n as f64 / self.gemm_efficiency;
        let bytes = 4.0 * (m * k + k * n + m * n) as f64 / self.streaming_efficiency;
        Work::Compute { flops, bytes }
    }

    /// Elementwise pass over `elems` floats, touching each `passes` times
    /// (ReLU forward = 2: read + write).
    pub fn elementwise(&self, elems: u64, passes: f64) -> Work {
        Work::Compute {
            flops: elems as f64,
            bytes: 4.0 * elems as f64 * passes / self.streaming_efficiency,
        }
    }

    /// Adam update of `params` parameters: read w, g, m, v; write w, m, v.
    pub fn adam(&self, params: u64) -> Work {
        Work::Compute {
            flops: 12.0 * params as f64,
            bytes: 4.0 * params as f64 * 7.0 / self.streaming_efficiency,
        }
    }

    /// Softmax cross-entropy over `rows × classes` plus gradient.
    pub fn loss(&self, rows: u64, classes: u64) -> Work {
        let elems = rows as f64 * classes as f64;
        Work::Compute { flops: 8.0 * elems, bytes: 4.0 * elems * 3.0 / self.streaming_efficiency }
    }

    /// Duration a [`Work`] would take on an otherwise idle GPU — used by
    /// planners and tests; the engine itself handles contention.
    pub fn solo_seconds(&self, gpu: &GpuSpec, work: Work) -> f64 {
        match work {
            Work::Compute { flops, bytes } => (flops / gpu.flops).max(bytes / gpu.mem_bw),
            Work::Comm { bytes, bw } => bytes / bw,
            Work::Fixed { seconds } => seconds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bytes_of(w: Work) -> f64 {
        match w {
            Work::Compute { bytes, .. } => bytes,
            _ => panic!("expected compute"),
        }
    }

    fn flops_of(w: Work) -> f64 {
        match w {
            Work::Compute { flops, .. } => flops,
            _ => panic!("expected compute"),
        }
    }

    #[test]
    fn spmm_bytes_monotone_in_nnz() {
        let m = CostModel::default();
        let g = GpuSpec::v100();
        let lo = bytes_of(m.spmm(&g, 1000, 1000, 5_000, 64, false));
        let hi = bytes_of(m.spmm(&g, 1000, 1000, 50_000, 64, false));
        assert!(hi > lo);
    }

    #[test]
    fn spmm_smaller_tile_has_lower_traffic_per_nnz() {
        // The Fig 9 mechanism: same nnz, smaller dense working set => less
        // DRAM traffic because rereads hit cache.
        let m = CostModel::default();
        let g = GpuSpec::v100();
        let big_ws = bytes_of(m.spmm(&g, 100_000, 1_000_000, 10_000_000, 512, false));
        let small_ws = bytes_of(m.spmm(&g, 100_000, 10_000, 10_000_000, 512, false));
        assert!(small_ws < big_ws * 0.7, "small {small_ws} vs big {big_ws}");
    }

    #[test]
    fn spmm_is_membound_on_large_graphs() {
        // Reddit-like tile: B-traffic dwarfs FLOPs on a V100.
        let m = CostModel::default();
        let g = GpuSpec::v100();
        let w = m.spmm(&g, 233_000, 233_000, 115_000_000, 512, false);
        let t_bytes = bytes_of(w) / g.mem_bw;
        let t_flops = flops_of(w) / g.flops;
        assert!(t_bytes > t_flops, "bytes {t_bytes} flops {t_flops}");
    }

    #[test]
    fn gemm_is_flop_bound_at_gcn_sizes() {
        let m = CostModel::default();
        let g = GpuSpec::v100();
        let w = m.gemm(&g, 233_000, 602, 512);
        let t_bytes = bytes_of(w) / g.mem_bw;
        let t_flops = flops_of(w) / g.flops;
        assert!(t_flops > t_bytes);
    }

    #[test]
    fn accumulate_costs_more() {
        let m = CostModel::default();
        let g = GpuSpec::v100();
        let a = bytes_of(m.spmm(&g, 1000, 1000, 10_000, 64, false));
        let b = bytes_of(m.spmm(&g, 1000, 1000, 10_000, 64, true));
        assert!(b > a);
    }

    #[test]
    fn solo_seconds_roofline() {
        let m = CostModel::default();
        let g = GpuSpec::v100();
        let t = m.solo_seconds(&g, Work::Compute { flops: g.flops, bytes: 0.0 });
        assert!((t - 1.0).abs() < 1e-9);
        let t2 = m.solo_seconds(&g, Work::Comm { bytes: 25.0e9, bw: 25.0e9 });
        assert!((t2 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn reddit_epoch_scale_sanity() {
        // A 2-layer hidden-512 epoch on Reddit should land around a few
        // hundred milliseconds on one A100 (paper Fig 13's axis tops out at
        // 0.8 s with MG-GCN well under it), and the hidden-16 model around
        // tens of milliseconds (Table 3: 0.033 s). Sum the major kernels
        // coarsely and check the orders of magnitude.
        let m = CostModel::default();
        let g = GpuSpec::a100();
        let (n, nnz, d0, h) = (233_000u64, 115_000_000u64, 602u64, 512u64);
        let mut t = 0.0;
        // forward: gemm(n,d0,h) + spmm(h) + gemm(n,h,41) + spmm(41)
        t += m.solo_seconds(&g, m.gemm(&g, n, d0, h));
        t += m.solo_seconds(&g, m.spmm(&g, n, n, nnz, h, false));
        t += m.solo_seconds(&g, m.gemm(&g, n, h, 41));
        t += m.solo_seconds(&g, m.spmm(&g, n, n, nnz, 41, false));
        // backward: one spmm skipped (first layer), gemms roughly 2x forward
        t += m.solo_seconds(&g, m.spmm(&g, n, n, nnz, h, false));
        t += 2.0 * m.solo_seconds(&g, m.gemm(&g, n, d0, h));
        t += 2.0 * m.solo_seconds(&g, m.gemm(&g, n, h, 41));
        assert!(t > 0.05 && t < 0.8, "h=512 epoch estimate {t} s");

        // Hidden-16 model (the Table 3 configuration).
        let h16 = 16u64;
        let mut t16 = 0.0;
        t16 += m.solo_seconds(&g, m.gemm(&g, n, d0, h16));
        t16 += m.solo_seconds(&g, m.spmm(&g, n, n, nnz, h16, false));
        t16 += m.solo_seconds(&g, m.gemm(&g, n, h16, 41));
        t16 += m.solo_seconds(&g, m.spmm(&g, n, n, nnz, 41, false));
        t16 += m.solo_seconds(&g, m.spmm(&g, n, n, nnz, h16, false));
        t16 += 2.0 * m.solo_seconds(&g, m.gemm(&g, n, d0, h16));
        t16 += 2.0 * m.solo_seconds(&g, m.gemm(&g, n, h16, 41));
        assert!(t16 > 0.005 && t16 < 0.1, "h=16 epoch estimate {t16} s (paper: 0.033)");
    }
}
