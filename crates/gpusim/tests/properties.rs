//! Property-based tests for the discrete-event engine, memory tracker, and
//! cost models: conservation laws that must hold for any schedule.

use mggcn_gpusim::engine::OpDesc;
use mggcn_gpusim::{Category, CostModel, GpuSpec, MachineSpec, MemoryTracker, Schedule, Work};
use proptest::prelude::*;

fn machine(gpus: usize) -> MachineSpec {
    let mut m = MachineSpec::uniform("prop", GpuSpec::v100(), gpus, 6, 25.0e9);
    m.comm_latency = 0.0;
    m
}

/// A random well-formed schedule description: per op (gpu, stream,
/// seconds, optional wait on an earlier op).
#[derive(Debug, Clone)]
struct OpSpec {
    gpu: usize,
    stream: usize,
    seconds: f64,
    wait_back: Option<usize>,
}

fn ops_strategy(gpus: usize) -> impl Strategy<Value = Vec<OpSpec>> {
    proptest::collection::vec(
        (0..gpus, 0..2usize, 1u32..100, proptest::option::of(1usize..8)),
        1..40,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .map(|(gpu, stream, ms, wait_back)| OpSpec {
                gpu,
                stream,
                seconds: ms as f64 * 1e-3,
                wait_back,
            })
            .collect()
    })
}

fn build_and_run(gpus: usize, specs: &[OpSpec]) -> (f64, usize, Vec<usize>) {
    type Log = std::sync::Mutex<Vec<usize>>;
    let mut sched: Schedule<Log> = Schedule::new(machine(gpus));
    sched.launch_overhead = 0.0;
    let mut ids = Vec::new();
    for (idx, op) in specs.iter().enumerate() {
        // Waits reference only *earlier* ops, so the DAG is acyclic by
        // construction.
        let waits: Vec<usize> = op
            .wait_back
            .and_then(|back| idx.checked_sub(back))
            .map(|earlier| vec![ids[earlier]])
            .unwrap_or_default();
        let id = sched.launch(
            op.gpu,
            op.stream,
            Work::Fixed { seconds: op.seconds },
            OpDesc::new(Category::Other, "prop"),
            &waits,
            Some(Box::new(move |log: &Log| log.lock().unwrap().push(idx))),
        );
        ids.push(id);
    }
    let log: Log = std::sync::Mutex::new(Vec::new());
    let report = sched.run(&log);
    let log = log.into_inner().unwrap();
    (report.makespan, report.ops_executed, log)
}

proptest! {
    #[test]
    fn every_op_executes_exactly_once(specs in ops_strategy(4)) {
        let (_, executed, log) = build_and_run(4, &specs);
        prop_assert_eq!(executed, specs.len());
        let mut sorted = log.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..specs.len()).collect::<Vec<_>>());
    }

    #[test]
    fn makespan_bounds_hold(specs in ops_strategy(4)) {
        let (makespan, _, _) = build_and_run(4, &specs);
        // Lower bound: the busiest lane's total work.
        let mut lane_work = std::collections::BTreeMap::new();
        let total: f64 = specs.iter().map(|o| o.seconds).sum();
        for o in &specs {
            *lane_work.entry((o.gpu, o.stream)).or_insert(0.0) += o.seconds;
        }
        let busiest = lane_work.values().cloned().fold(0.0, f64::max);
        prop_assert!(makespan >= busiest - 1e-9, "makespan {makespan} < busiest lane {busiest}");
        // Upper bound: fully serial execution.
        prop_assert!(makespan <= total + 1e-9, "makespan {makespan} > total {total}");
    }

    #[test]
    fn bodies_respect_dependencies(specs in ops_strategy(3)) {
        let (_, _, log) = build_and_run(3, &specs);
        let position: std::collections::HashMap<usize, usize> =
            log.iter().enumerate().map(|(pos, &idx)| (idx, pos)).collect();
        for (idx, op) in specs.iter().enumerate() {
            if let Some(earlier) = op.wait_back.and_then(|b| idx.checked_sub(b)) {
                prop_assert!(
                    position[&earlier] < position[&idx],
                    "op {idx} ran before its dependency {earlier}"
                );
            }
        }
        // Stream FIFO order also holds per lane.
        for lane_gpu in 0..3 {
            for stream in 0..2 {
                let lane: Vec<usize> = log
                    .iter()
                    .copied()
                    .filter(|&i| specs[i].gpu == lane_gpu && specs[i].stream == stream)
                    .collect();
                prop_assert!(lane.windows(2).all(|w| w[0] < w[1]), "lane FIFO violated: {lane:?}");
            }
        }
    }

    #[test]
    fn timeline_spans_are_well_formed(specs in ops_strategy(4)) {
        let mut sched: Schedule<()> = Schedule::new(machine(4));
        sched.launch_overhead = 0.0;
        let mut ids = Vec::new();
        for (idx, op) in specs.iter().enumerate() {
            let waits: Vec<usize> = op
                .wait_back
                .and_then(|back| idx.checked_sub(back))
                .map(|earlier| vec![ids[earlier]])
                .unwrap_or_default();
            ids.push(sched.launch(
                op.gpu,
                op.stream,
                Work::Fixed { seconds: op.seconds },
                OpDesc::new(Category::Other, "prop"),
                &waits,
                None,
            ));
        }
        let report = sched.run(&());
        prop_assert_eq!(report.timeline.spans.len(), specs.len());
        for span in &report.timeline.spans {
            prop_assert!(span.end >= span.start);
            prop_assert!(span.end <= report.makespan + 1e-9);
        }
        // Spans on one lane never overlap.
        for gpu in 0..4 {
            for stream in 0..2 {
                let lane = report.timeline.lane(gpu, stream);
                for w in lane.windows(2) {
                    prop_assert!(w[0].end <= w[1].start + 1e-9, "lane overlap");
                }
            }
        }
    }

    #[test]
    fn memory_tracker_conserves(ops in proptest::collection::vec((1u64..1000, any::<bool>()), 1..50)) {
        let mut t = MemoryTracker::new(0, u64::MAX);
        let mut live = Vec::new();
        let mut expected = 0u64;
        for (bytes, free_one) in ops {
            if free_one && !live.is_empty() {
                let (id, b): (_, u64) = live.pop().unwrap();
                t.free(id);
                expected -= b;
            } else {
                let id = t.alloc("x", bytes).unwrap();
                live.push((id, bytes));
                expected += bytes;
            }
            prop_assert_eq!(t.in_use(), expected);
            prop_assert!(t.peak() >= t.in_use());
        }
    }

    #[test]
    fn spmm_cost_is_monotone(
        nnz1 in 1u64..1_000_000,
        extra in 1u64..1_000_000,
        d in 1u64..512,
    ) {
        let model = CostModel::default();
        let g = GpuSpec::v100();
        let lo = model.solo_seconds(&g, model.spmm(&g, 1000, 1000, nnz1, d, false));
        let hi = model.solo_seconds(&g, model.spmm(&g, 1000, 1000, nnz1 + extra, d, false));
        prop_assert!(hi >= lo, "cost not monotone in nnz: {lo} vs {hi}");
    }

    #[test]
    fn gemm_cost_scales_with_flops(m in 1u64..5000, k in 1u64..500, n in 1u64..500) {
        let model = CostModel::default();
        let g = GpuSpec::a100();
        let base = model.solo_seconds(&g, model.gemm(&g, m, k, n));
        let double = model.solo_seconds(&g, model.gemm(&g, 2 * m, k, n));
        prop_assert!(double >= base);
        prop_assert!(double <= base * 2.0 + 1e-12);
    }

    #[test]
    fn broadcast_bw_never_exceeds_total_links(root in 0usize..8, sz in 2usize..8) {
        let m = MachineSpec::dgx_v100();
        let group: Vec<usize> = (0..sz).collect();
        if root < sz {
            let bw = m.broadcast_bw(root, &group);
            prop_assert!(bw <= 6.0 * 25.0e9 + 1.0);
            prop_assert!(bw > 0.0);
        }
    }
}
