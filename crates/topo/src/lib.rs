//! Hierarchical multi-node machine studies: the §5.1 1D/1.5D crossover.
//!
//! MG-GCN ships 1D row partitioning because on the machines the paper had,
//! 1.5D (replication factor `c = 2`) either loses outright (DGX-1: the
//! cross-quad reduction sees only 2 NVLinks, 1.5D is 1.5× slower) or wins
//! by 4/3 but doubles memory (DGX-A100, §5.1). The calculus flips on
//! *multi-node* machines: a 1D full-machine broadcast crosses the node NIC
//! every stage, while 1.5D — with replication groups aligned to nodes —
//! broadcasts over NVLink and only crosses the NIC during its pairwise
//! cross-group reduction. This crate quantifies exactly that:
//!
//! * [`sim_1d_comm`] / [`sim_15d_comm`] — pure-communication DES makespans
//!   of the two wire patterns on any [`MachineSpec`], cross-checked against
//!   the closed form of [`mggcn_comm::analysis::analyze`];
//! * [`nic_sweep`] / [`crossover_nic_gbps`] — sweep the inter-node NIC on a
//!   split-quad DGX-1 ([`MachineSpec::v100_quad_cluster`]) and pin the
//!   bandwidth where 1.5D starts winning (analytically 100 GB/s: the point
//!   where the NIC caps 1D's 6-link fan-out down to 1.5D's aggregate rate);
//! * [`e2e_sweep`] — full scheduled-trainer epochs at papers100M scale
//!   (P = 8, [`MachineSpec::a100_quad_cluster`]) for both partitionings,
//!   showing the end-to-end crossover, not just the comm term;
//! * [`traffic_split`] — traced intra- vs inter-node byte counters on a
//!   2-node machine, proving 1.5D relocates exactly the broadcast volume
//!   from the NIC onto NVLink (inter-node bytes are *equal* between the
//!   strategies; 1.5D's broadcasts become intra-node);
//! * [`preflight_sweep`] — every generated 1D and 1.5D schedule passes the
//!   `mggcn-analyze` hazard/deadlock/budget verifier;
//! * [`run_topo_bench`] — the schema-validated `BENCH_topo.json` stat card
//!   gating all of the above in CI ([`validate_topo_bench`]).

#![forbid(unsafe_code)]

use std::sync::Arc;

use mggcn_analyze::{analyze_budget, BudgetSpec};
use mggcn_comm::analysis;
use mggcn_core::config::{GcnConfig, Partition, TrainOptions};
use mggcn_core::problem::Problem;
use mggcn_core::trainer::Trainer;
use mggcn_gpusim::engine::OpDesc;
use mggcn_gpusim::{Category, GpuSpec, MachineSpec, Schedule};
use mggcn_graph::generators::sbm::{self, SbmConfig};
use mggcn_trace::json::{self, JsonWriter, Value};
use mggcn_trace::Tracer;

/// Schema tag of the `BENCH_topo.json` stat card.
pub const BENCH_TOPO_SCHEMA: &str = "mggcn-topo-v1";

/// Cross-group partner of GPU `j` under 1.5D with `c = 2`.
pub fn mate(j: usize, p: usize) -> usize {
    (j + p / 2) % p
}

/// The two replication groups: the machine's halves, which on node-major
/// hierarchical machines with `nodes | 2` align with node boundaries.
pub fn replication_groups(p: usize) -> [Vec<usize>; 2] {
    assert!(p >= 2 && p.is_multiple_of(2), "1.5D needs an even GPU count");
    [(0..p / 2).collect(), (p / 2..p).collect()]
}

/// DES makespan of the 1D pattern: `P` serialized full-machine broadcasts
/// of `nd/P` bytes each (every broadcast occupies all comm lanes, so the
/// lane FIFO serializes them — exactly the closed form's model).
pub fn sim_1d_comm(machine: &MachineSpec, nd_bytes: f64) -> f64 {
    let mut m = machine.clone();
    m.comm_latency = 0.0; // compare pure bandwidth terms exactly
    let p = m.gpu_count();
    let all: Vec<usize> = (0..p).collect();
    let lanes: Vec<(usize, usize)> = all.iter().map(|&g| (g, 1)).collect();
    let mut s: Schedule<()> = Schedule::new(m.clone());
    s.launch_overhead = 0.0;
    for root in 0..p {
        let bw = m.broadcast_bw(root, &all);
        s.collective(
            &lanes,
            nd_bytes / p as f64,
            bw,
            OpDesc::staged(Category::Comm, "bcast", root),
            &[],
            None,
        );
    }
    s.simulate().report.makespan
}

/// DES makespan of the 1.5D pattern (`c = 2`): the two groups broadcast
/// their half of the matrix concurrently (`P/2` rounds of `nd/P` bytes,
/// serialized per group by the lane FIFO), then the `P/2` cross-group
/// pairs reduce `nd/(P/2)` bytes each, all pairs concurrent.
pub fn sim_15d_comm(machine: &MachineSpec, nd_bytes: f64) -> f64 {
    let mut m = machine.clone();
    m.comm_latency = 0.0;
    let p = m.gpu_count();
    assert!(p >= 4 && p.is_multiple_of(2), "1.5D comm sim needs an even GPU count ≥ 4");
    let half = p / 2;
    let [g0, g1] = replication_groups(p);
    let lanes0: Vec<(usize, usize)> = g0.iter().map(|&g| (g, 1)).collect();
    let lanes1: Vec<(usize, usize)> = g1.iter().map(|&g| (g, 1)).collect();
    let mut s: Schedule<()> = Schedule::new(m.clone());
    s.launch_overhead = 0.0;
    for r in 0..half {
        s.collective(
            &lanes0,
            nd_bytes / p as f64,
            m.broadcast_bw(r, &g0),
            OpDesc::staged(Category::Comm, "bcast", r),
            &[],
            None,
        );
        s.collective(
            &lanes1,
            nd_bytes / p as f64,
            m.broadcast_bw(half + r, &g1),
            OpDesc::staged(Category::Comm, "bcast", half + r),
            &[],
            None,
        );
    }
    for a in 0..half {
        let pair = [a, a + half];
        s.collective(
            &[(a, 1), (a + half, 1)],
            nd_bytes / half as f64,
            m.reduce_bw(a, &pair),
            OpDesc::new(Category::Comm, "reduce"),
            &[],
            None,
        );
    }
    s.simulate().report.makespan
}

/// One machine's §5.1 verdict: the closed-form and DES `t_15d / t_1d`
/// ratios (above 1.0 means 1D wins) and the 1.5D memory factor.
#[derive(Clone, Debug)]
pub struct PaperVerdict {
    pub machine: String,
    pub slowdown_closed: f64,
    pub slowdown_sim: f64,
    pub mem_factor_15d: f64,
}

fn verdict_for(machine: &MachineSpec, nd_bytes: f64) -> PaperVerdict {
    let closed = analysis::analyze(machine, nd_bytes);
    let sim = sim_15d_comm(machine, nd_bytes) / sim_1d_comm(machine, nd_bytes);
    PaperVerdict {
        machine: machine.name.clone(),
        slowdown_closed: closed.slowdown_15d(),
        slowdown_sim: sim,
        mem_factor_15d: closed.mem_factor_15d,
    }
}

/// The paper's two §5.1 data points: DGX-1 (1.5D loses 1.5×) and DGX-A100
/// (1.5D wins 4/3×), each from the closed form *and* the DES.
pub fn paper_51_verdicts(nd_bytes: f64) -> (PaperVerdict, PaperVerdict) {
    (
        verdict_for(&MachineSpec::dgx_v100(), nd_bytes),
        verdict_for(&MachineSpec::dgx_a100(), nd_bytes),
    )
}

/// One NIC setting of the split-quad sweep.
#[derive(Clone, Copy, Debug)]
pub struct SweepPoint {
    pub nic_gbps: f64,
    pub slowdown_closed: f64,
    pub slowdown_sim: f64,
}

/// Sweep the inter-node NIC of [`MachineSpec::v100_quad_cluster`]: with an
/// infinite NIC the machine is bandwidth-identical to DGX-1 (1.5D loses);
/// as the NIC shrinks, 1D's every-stage node crossings pay for it while
/// 1.5D only crosses during the reduction.
pub fn nic_sweep(nics_gbps: &[f64], nd_bytes: f64) -> Vec<SweepPoint> {
    nics_gbps
        .iter()
        .map(|&nic| {
            let m = MachineSpec::v100_quad_cluster(nic * 1e9);
            let v = verdict_for(&m, nd_bytes);
            SweepPoint {
                nic_gbps: nic,
                slowdown_closed: v.slowdown_closed,
                slowdown_sim: v.slowdown_sim,
            }
        })
        .collect()
}

/// Linearly interpolated NIC bandwidth where the simulated slowdown
/// crosses 1.0 — the 1D/1.5D break-even point (analytically 100 GB/s on
/// the split-quad machine). `None` when the sweep never crosses.
pub fn crossover_nic_gbps(sweep: &[SweepPoint]) -> Option<f64> {
    for w in sweep.windows(2) {
        let (a, b) = (w[0], w[1]);
        let (sa, sb) = (a.slowdown_sim, b.slowdown_sim);
        if (sa - 1.0) * (sb - 1.0) <= 0.0 && sa != sb {
            return Some(a.nic_gbps + (1.0 - sa) * (b.nic_gbps - a.nic_gbps) / (sb - sa));
        }
    }
    None
}

/// One NIC setting of the end-to-end trainer sweep.
#[derive(Clone, Copy, Debug)]
pub struct E2ePoint {
    pub nic_gbps: f64,
    /// Simulated seconds of one full 1D training epoch.
    pub t_1d: f64,
    /// Simulated seconds of one full 1.5D training epoch.
    pub t_15d: f64,
}

impl E2ePoint {
    /// Above 1.0 means 1D wins end to end.
    pub fn slowdown_15d(&self) -> f64 {
        self.t_15d / self.t_1d
    }
}

fn e2e_epoch_seconds(nic_gbps: f64, partition: Partition) -> f64 {
    let card = mggcn_graph::datasets::PAPERS;
    // Papers with a 2-layer hidden-128 model: the widest configuration
    // that fits 8×80 GB under the 1.5D `L + 4` budget (model D's hidden
    // 208 does not — §5.1's 2× memory objection is real at this scale).
    let cfg = GcnConfig::new(card.feat_dim, &[128], card.classes);
    let mut opts = TrainOptions::full(MachineSpec::a100_quad_cluster(nic_gbps * 1e9), 8);
    opts.partition = partition;
    let problem = Problem::from_stats(&card, &opts);
    let mut t = Trainer::new(problem, cfg, opts).expect("papers100M must fit 8×80 GB");
    t.train_epoch().expect("timing epoch").sim_seconds
}

/// Full scheduled-trainer epochs at papers100M scale (P = 8 across two
/// A100 quads) for both partitionings at each NIC setting. Compute costs
/// are identical between the strategies (each GPU does one own-row plus
/// one mate-row half-sweep under 1.5D — the same tile count as a 1D full
/// sweep), so the end-to-end crossover tracks the comm crossover.
pub fn e2e_sweep(nics_gbps: &[f64]) -> Vec<E2ePoint> {
    nics_gbps
        .iter()
        .map(|&nic| E2ePoint {
            nic_gbps: nic,
            t_1d: e2e_epoch_seconds(nic, Partition::OneD),
            t_15d: e2e_epoch_seconds(nic, Partition::OneFiveD),
        })
        .collect()
}

/// Traced byte totals of one training run, split by node locality.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TrafficSplit {
    pub intra_node: u64,
    pub inter_node: u64,
    pub total: u64,
}

/// Run a real (materialized) training epoch on a 2-node × 2-GPU machine
/// and read the tracer's machine-aware byte counters. Under 1D every
/// collective spans both nodes (intra-node bytes are zero); under 1.5D
/// the group broadcasts are node-local and only the pairwise reductions
/// (plus the weight-gradient all-reduces both strategies share) cross
/// the NIC — with *exactly* the 1D inter-node byte total.
pub fn traffic_split(partition: Partition, epochs: usize) -> TrafficSplit {
    let graph = sbm::generate(&SbmConfig::community_benchmark(400, 4), 11);
    let cfg = GcnConfig::new(graph.features.cols(), &[16], graph.classes);
    let machine = MachineSpec::hier_cluster("A100-2x2", GpuSpec::a100(), 2, 2, 12, 25.0e9, 50.0e9);
    let mut opts = TrainOptions::full(machine, 4);
    opts.partition = partition;
    let problem = Problem::from_graph(&graph, &cfg, &opts);
    let mut trainer = Trainer::new(problem, cfg, opts).expect("tiny graph fits");
    let tracer = Arc::new(Tracer::new());
    trainer.set_tracer(tracer.clone());
    for _ in 0..epochs {
        trainer.train_epoch().expect("train");
    }
    TrafficSplit {
        intra_node: tracer.counter("sim.comm.bytes.intra_node"),
        inter_node: tracer.counter("sim.comm.bytes.inter_node"),
        total: tracer.counter("sim.comm.bytes.total"),
    }
}

/// How many generated schedules the `mggcn-analyze` verifier saw and how
/// many came back clean (no hazards, no deadlock, within the partition's
/// buffer budget).
#[derive(Clone, Copy, Debug)]
pub struct PreflightSummary {
    pub schedules: usize,
    pub clean: usize,
}

/// Build trainer schedules across `{1D, 1.5D} × {2, 4, 8 GPUs} ×
/// {overlap on/off} × {NVSwitch, 2-node hierarchical}` and verify each
/// with [`analyze_budget`] under the partition's own budget
/// ([`BudgetSpec::mg_gcn`] is `L + 3` big buffers; `mg_gcn_15d` allows
/// the 1.5D `RP` replica, `L + 4`).
pub fn preflight_sweep() -> PreflightSummary {
    let graph = sbm::generate(&SbmConfig::community_benchmark(160, 4), 7);
    let cfg = GcnConfig::new(graph.features.cols(), &[24], graph.classes);
    let machines = [
        MachineSpec::dgx_a100(),
        MachineSpec::hier_cluster("A100-2x4", GpuSpec::a100(), 2, 4, 12, 25.0e9, 50.0e9),
    ];
    let mut schedules = 0;
    let mut clean = 0;
    for partition in [Partition::OneD, Partition::OneFiveD] {
        for gpus in [2usize, 4, 8] {
            for overlap in [false, true] {
                for machine in &machines {
                    let mut opts = TrainOptions::full(machine.clone(), gpus);
                    opts.partition = partition;
                    opts.overlap = overlap;
                    let problem = Problem::from_graph(&graph, &cfg, &opts);
                    let trainer = Trainer::new(problem, cfg.clone(), opts).expect("fits");
                    let budget = match partition {
                        Partition::OneD => BudgetSpec::mg_gcn(cfg.layers()),
                        Partition::OneFiveD => BudgetSpec::mg_gcn_15d(cfg.layers()),
                    };
                    let report = analyze_budget(&trainer.epoch_schedule(), &budget);
                    schedules += 1;
                    if report.clean() {
                        clean += 1;
                    }
                }
            }
        }
    }
    PreflightSummary { schedules, clean }
}

/// Knobs of the stat card (defaults reproduce the committed artifact).
#[derive(Clone, Debug)]
pub struct TopoBenchOptions {
    /// Feature payload for the closed-form/DES comparisons (bytes).
    pub nd_bytes: f64,
    /// NIC settings of the split-quad comm sweep (GB/s, descending).
    pub sweep_nics_gbps: Vec<f64>,
    /// NIC settings of the papers100M end-to-end sweep (GB/s, descending).
    pub e2e_nics_gbps: Vec<f64>,
    /// Epochs of the traced traffic-split run.
    pub traffic_epochs: usize,
}

impl Default for TopoBenchOptions {
    fn default() -> Self {
        Self {
            nd_bytes: 1.0e9,
            sweep_nics_gbps: vec![200.0, 150.0, 120.0, 80.0, 50.0, 25.0],
            e2e_nics_gbps: vec![400.0, 200.0, 100.0, 50.0, 25.0, 12.5],
            traffic_epochs: 1,
        }
    }
}

/// Everything `BENCH_topo.json` reports.
#[derive(Clone, Debug)]
pub struct TopoBench {
    pub paper_dgx1: PaperVerdict,
    pub paper_a100: PaperVerdict,
    pub sweep: Vec<SweepPoint>,
    pub crossover_gbps: Option<f64>,
    pub e2e: Vec<E2ePoint>,
    pub traffic_1d: TrafficSplit,
    pub traffic_15d: TrafficSplit,
    pub preflight: PreflightSummary,
}

/// The six pass/fail gates of the card.
#[derive(Clone, Copy, Debug)]
pub struct Verdicts {
    /// DGX-1: 1.5D ≈ 1.5× slower (closed form exact, DES within 2%).
    pub dgx1_1d_wins: bool,
    /// DGX-A100: 1.5D ≈ 4/3× faster (closed form exact, DES within 2%).
    pub a100_15d_wins: bool,
    /// The split-quad comm crossover lands at 100 ± 10 GB/s.
    pub crossover_in_band: bool,
    /// Papers100M end to end: 1D still wins at the highest NIC…
    pub e2e_1d_wins_at_high_nic: bool,
    /// …and 1.5D wins at the lowest.
    pub e2e_15d_wins_at_low_nic: bool,
    /// 1.5D moved its broadcasts off the NIC without adding NIC bytes:
    /// `intra_1d = 0`, `intra_15d > 0`, `inter_15d = inter_1d`.
    pub traffic_relocated: bool,
    /// Every generated schedule passed `mggcn-analyze`.
    pub preflight_clean: bool,
}

impl Verdicts {
    pub fn all_ok(&self) -> bool {
        self.dgx1_1d_wins
            && self.a100_15d_wins
            && self.crossover_in_band
            && self.e2e_1d_wins_at_high_nic
            && self.e2e_15d_wins_at_low_nic
            && self.traffic_relocated
            && self.preflight_clean
    }
}

fn near(x: f64, target: f64, rel: f64) -> bool {
    (x - target).abs() <= rel * target
}

impl TopoBench {
    pub fn verdicts(&self) -> Verdicts {
        let first = self.e2e.first();
        let last = self.e2e.last();
        Verdicts {
            dgx1_1d_wins: near(self.paper_dgx1.slowdown_closed, 1.5, 1e-9)
                && near(self.paper_dgx1.slowdown_sim, 1.5, 0.02),
            a100_15d_wins: near(self.paper_a100.slowdown_closed, 0.75, 1e-9)
                && near(self.paper_a100.slowdown_sim, 0.75, 0.02),
            crossover_in_band: self.crossover_gbps.is_some_and(|x| (90.0..=110.0).contains(&x)),
            e2e_1d_wins_at_high_nic: first.is_some_and(|p| p.slowdown_15d() > 1.0),
            e2e_15d_wins_at_low_nic: last.is_some_and(|p| p.slowdown_15d() < 1.0),
            traffic_relocated: self.traffic_1d.intra_node == 0
                && self.traffic_15d.intra_node > 0
                && self.traffic_15d.inter_node == self.traffic_1d.inter_node,
            preflight_clean: self.preflight.schedules > 0
                && self.preflight.clean == self.preflight.schedules,
        }
    }

    pub fn ok(&self) -> bool {
        self.verdicts().all_ok()
    }

    /// Render the `BENCH_topo.json` document.
    pub fn to_json(&self) -> String {
        let paper = |v: &PaperVerdict| {
            JsonWriter::new()
                .str("machine", &v.machine)
                .f64("slowdown_closed", v.slowdown_closed, 6)
                .f64("slowdown_sim", v.slowdown_sim, 6)
                .f64("mem_factor_15d", v.mem_factor_15d, 2)
                .finish()
        };
        let paper_51 = JsonWriter::new()
            .raw("dgx1", &paper(&self.paper_dgx1))
            .raw("a100", &paper(&self.paper_a100))
            .finish();
        let sweep = format!(
            "[{}]",
            self.sweep
                .iter()
                .map(|p| JsonWriter::new()
                    .f64("nic_gbps", p.nic_gbps, 3)
                    .f64("slowdown_closed", p.slowdown_closed, 6)
                    .f64("slowdown_sim", p.slowdown_sim, 6)
                    .finish())
                .collect::<Vec<_>>()
                .join(",")
        );
        let e2e_points = format!(
            "[{}]",
            self.e2e
                .iter()
                .map(|p| JsonWriter::new()
                    .f64("nic_gbps", p.nic_gbps, 3)
                    .f64("t_1d_s", p.t_1d, 6)
                    .f64("t_15d_s", p.t_15d, 6)
                    .f64("slowdown_15d", p.slowdown_15d(), 6)
                    .finish())
                .collect::<Vec<_>>()
                .join(",")
        );
        let e2e = JsonWriter::new()
            .str("dataset", "papers100M")
            .usize("gpus", 8)
            .str("machine", "A100-quad-cluster")
            .raw("points", &e2e_points)
            .finish();
        let split = |t: &TrafficSplit| {
            JsonWriter::new()
                .u64("intra_node", t.intra_node)
                .u64("inter_node", t.inter_node)
                .u64("total", t.total)
                .finish()
        };
        let traffic = JsonWriter::new()
            .str("machine", "A100-2x2")
            .usize("gpus", 4)
            .usize("epochs", 1)
            .raw("one_d", &split(&self.traffic_1d))
            .raw("one_five_d", &split(&self.traffic_15d))
            .finish();
        let preflight = JsonWriter::new()
            .usize("schedules", self.preflight.schedules)
            .usize("clean", self.preflight.clean)
            .finish();
        let v = self.verdicts();
        let verdict = JsonWriter::new()
            .bool("dgx1_1d_wins", v.dgx1_1d_wins)
            .bool("a100_15d_wins", v.a100_15d_wins)
            .bool("crossover_in_band", v.crossover_in_band)
            .bool("e2e_1d_wins_at_high_nic", v.e2e_1d_wins_at_high_nic)
            .bool("e2e_15d_wins_at_low_nic", v.e2e_15d_wins_at_low_nic)
            .bool("traffic_relocated", v.traffic_relocated)
            .bool("preflight_clean", v.preflight_clean)
            .finish();
        let mut w = JsonWriter::new()
            .str("bench", "topo")
            .str("schema", BENCH_TOPO_SCHEMA)
            .raw("paper_51", &paper_51)
            .raw("nic_sweep", &sweep);
        w = match self.crossover_gbps {
            Some(x) => w.f64("crossover_nic_gbps", x, 3),
            None => w.raw("crossover_nic_gbps", "null"),
        };
        w.raw("e2e", &e2e)
            .raw("traffic", &traffic)
            .raw("preflight", &preflight)
            .raw("verdict", &verdict)
            .finish()
    }
}

/// Run every study and assemble the card.
pub fn run_topo_bench(opts: &TopoBenchOptions) -> TopoBench {
    let (paper_dgx1, paper_a100) = paper_51_verdicts(opts.nd_bytes);
    let sweep = nic_sweep(&opts.sweep_nics_gbps, opts.nd_bytes);
    let crossover_gbps = crossover_nic_gbps(&sweep);
    let e2e = e2e_sweep(&opts.e2e_nics_gbps);
    let traffic_1d = traffic_split(Partition::OneD, opts.traffic_epochs);
    let traffic_15d = traffic_split(Partition::OneFiveD, opts.traffic_epochs);
    let preflight = preflight_sweep();
    TopoBench {
        paper_dgx1,
        paper_a100,
        sweep,
        crossover_gbps,
        e2e,
        traffic_1d,
        traffic_15d,
        preflight,
    }
}

fn req<'a>(obj: &'a Value, key: &str) -> Result<&'a Value, String> {
    obj.get(key).ok_or_else(|| format!("missing key {key:?}"))
}

/// Validate a `BENCH_topo.json` document: schema tag, structural
/// completeness, and every verdict gate true.
pub fn validate_topo_bench(text: &str) -> Result<(), String> {
    let doc = json::parse(text)?;
    if req(&doc, "bench")?.as_str() != Some("topo") {
        return Err("bench must be \"topo\"".into());
    }
    if req(&doc, "schema")?.as_str() != Some(BENCH_TOPO_SCHEMA) {
        return Err(format!("schema must be {BENCH_TOPO_SCHEMA:?}"));
    }
    let paper = req(&doc, "paper_51")?;
    for m in ["dgx1", "a100"] {
        let v = req(paper, m)?;
        for k in ["slowdown_closed", "slowdown_sim", "mem_factor_15d"] {
            req(v, k)?.as_num().ok_or_else(|| format!("paper_51.{m}.{k} must be a number"))?;
        }
    }
    let sweep = req(&doc, "nic_sweep")?.as_arr().ok_or("nic_sweep must be an array")?;
    if sweep.is_empty() {
        return Err("nic_sweep must be non-empty".into());
    }
    req(&doc, "crossover_nic_gbps")?
        .as_num()
        .ok_or("crossover_nic_gbps must be a number (no crossover found)")?;
    let e2e = req(&doc, "e2e")?;
    let points = req(e2e, "points")?.as_arr().ok_or("e2e.points must be an array")?;
    if points.len() < 2 {
        return Err("e2e.points needs at least two NIC settings".into());
    }
    let traffic = req(&doc, "traffic")?;
    for part in ["one_d", "one_five_d"] {
        let t = req(traffic, part)?;
        for k in ["intra_node", "inter_node", "total"] {
            req(t, k)?.as_num().ok_or_else(|| format!("traffic.{part}.{k} must be a number"))?;
        }
    }
    let pre = req(&doc, "preflight")?;
    let schedules = req(pre, "schedules")?.as_num().ok_or("preflight.schedules")?;
    let clean = req(pre, "clean")?.as_num().ok_or("preflight.clean")?;
    if schedules < 1.0 || clean != schedules {
        return Err(format!("preflight not clean: {clean}/{schedules}"));
    }
    let verdict = req(&doc, "verdict")?;
    for k in [
        "dgx1_1d_wins",
        "a100_15d_wins",
        "crossover_in_band",
        "e2e_1d_wins_at_high_nic",
        "e2e_15d_wins_at_low_nic",
        "traffic_relocated",
        "preflight_clean",
    ] {
        match req(verdict, k)?.as_bool() {
            Some(true) => {}
            Some(false) => return Err(format!("verdict.{k} is false")),
            None => return Err(format!("verdict.{k} must be a bool")),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mates_and_groups() {
        assert_eq!(mate(0, 8), 4);
        assert_eq!(mate(5, 8), 1);
        let [g0, g1] = replication_groups(8);
        assert_eq!(g0, vec![0, 1, 2, 3]);
        assert_eq!(g1, vec![4, 5, 6, 7]);
        for j in 0..8 {
            assert_eq!(mate(mate(j, 8), 8), j, "mate is an involution");
        }
    }

    #[test]
    fn paper_51_verdicts_from_closed_form_and_des() {
        let (dgx1, a100) = paper_51_verdicts(1.0e9);
        assert!((dgx1.slowdown_closed - 1.5).abs() < 1e-9, "DGX-1 closed {}", dgx1.slowdown_closed);
        assert!((a100.slowdown_closed - 0.75).abs() < 1e-9, "A100 closed {}", a100.slowdown_closed);
        assert!((dgx1.slowdown_sim - 1.5).abs() < 0.03, "DGX-1 sim {}", dgx1.slowdown_sim);
        assert!((a100.slowdown_sim - 0.75).abs() < 0.02, "A100 sim {}", a100.slowdown_sim);
        assert_eq!(dgx1.mem_factor_15d, 2.0);
    }

    #[test]
    fn nic_sweep_crosses_at_100_gbps() {
        let sweep = nic_sweep(&[200.0, 150.0, 120.0, 80.0, 50.0, 25.0], 1.0e9);
        // Slowdown is monotone non-increasing as the NIC shrinks.
        for w in sweep.windows(2) {
            assert!(w[1].slowdown_sim <= w[0].slowdown_sim + 1e-9);
        }
        assert!(sweep.first().unwrap().slowdown_sim > 1.0, "1D must win at 200 GB/s");
        assert!(sweep.last().unwrap().slowdown_sim < 1.0, "1.5D must win at 25 GB/s");
        let x = crossover_nic_gbps(&sweep).expect("sweep must cross");
        assert!((x - 100.0).abs() < 2.0, "crossover at {x} GB/s, expected ≈100");
    }

    #[test]
    fn e2e_crossover_exists_at_papers_scale() {
        let pts = e2e_sweep(&[400.0, 12.5]);
        assert!(pts[0].slowdown_15d() > 1.0, "1D must win e2e at 400 GB/s: {:?}", pts[0]);
        assert!(pts[1].slowdown_15d() < 1.0, "1.5D must win e2e at 12.5 GB/s: {:?}", pts[1]);
    }

    #[test]
    fn traffic_split_relocates_broadcasts_off_the_nic() {
        let t1 = traffic_split(Partition::OneD, 1);
        let t15 = traffic_split(Partition::OneFiveD, 1);
        assert_eq!(t1.intra_node, 0, "every 1D collective spans both nodes");
        assert!(t15.intra_node > 0, "1.5D group broadcasts are node-local");
        assert_eq!(
            t15.inter_node, t1.inter_node,
            "1.5D adds zero NIC bytes: reductions replace broadcasts exactly"
        );
        assert_eq!(t1.intra_node + t1.inter_node, t1.total);
        assert_eq!(t15.intra_node + t15.inter_node, t15.total);
        assert!(t15.total > t1.total, "the relocated bytes exist on NVLink");
    }

    #[test]
    fn preflight_is_clean_for_every_generated_schedule() {
        let p = preflight_sweep();
        assert!(p.schedules >= 24, "sweep must cover the shape grid: {p:?}");
        assert_eq!(p.clean, p.schedules, "analyze found findings: {p:?}");
    }

    #[test]
    fn bench_card_round_trips_and_validates() {
        let bench = run_topo_bench(&TopoBenchOptions::default());
        assert!(bench.ok(), "verdicts: {:?}", bench.verdicts());
        let json = bench.to_json();
        validate_topo_bench(&json).expect("own card must validate");
        // Any failing gate must fail validation.
        let broken = json.replace("\"preflight_clean\":true", "\"preflight_clean\":false");
        assert!(broken != json, "substitution must hit");
        assert!(validate_topo_bench(&broken).is_err());
        // Schema drift must fail validation.
        let drifted = json.replace(BENCH_TOPO_SCHEMA, "mggcn-topo-v0");
        assert!(validate_topo_bench(&drifted).is_err());
    }
}
