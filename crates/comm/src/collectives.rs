//! Data-plane collectives over per-device buffers.
//!
//! The virtual machine keeps each device's memory as ordinary host slices,
//! so the collectives are deterministic reference implementations with the
//! same contracts as their NCCL namesakes. Reductions use a fixed
//! peer order, so results are bit-reproducible run to run (stricter than
//! NCCL, which only promises it for a fixed algorithm/topology).

use rayon::prelude::*;

/// Copy `src` into every destination buffer (NCCL `ncclBroadcast`).
/// Destinations must match `src` in length.
pub fn broadcast(src: &[f32], dsts: &mut [&mut [f32]]) {
    dsts.par_iter_mut().for_each(|d| {
        assert_eq!(d.len(), src.len(), "broadcast size mismatch");
        d.copy_from_slice(src);
    });
}

/// Sum `srcs` elementwise into `dst` (NCCL `ncclReduce` with `ncclSum`).
pub fn reduce_sum(srcs: &[&[f32]], dst: &mut [f32]) {
    assert!(!srcs.is_empty(), "reduce needs at least one source");
    for s in srcs {
        assert_eq!(s.len(), dst.len(), "reduce size mismatch");
    }
    dst.copy_from_slice(srcs[0]);
    for s in &srcs[1..] {
        for (d, x) in dst.iter_mut().zip(s.iter()) {
            *d += x;
        }
    }
}

/// Sum all buffers elementwise and write the total back to every buffer
/// (NCCL `ncclAllReduce` with `ncclSum`). This is how the replicated weight
/// gradients stay consistent across GPUs.
pub fn all_reduce_sum(bufs: &mut [&mut [f32]]) {
    let Some((first, rest)) = bufs.split_first_mut() else {
        return;
    };
    for b in rest.iter() {
        assert_eq!(b.len(), first.len(), "all_reduce size mismatch");
    }
    // Reduce into the first buffer in fixed order…
    for b in rest.iter() {
        for (d, x) in first.iter_mut().zip(b.iter()) {
            *d += x;
        }
    }
    // …then broadcast the total back.
    let total: &[f32] = first;
    rest.par_iter_mut().for_each(|b| b.copy_from_slice(total));
}

/// Concatenate every rank's shard into each rank's output buffer
/// (NCCL `ncclAllGather`). `out.len()` must be `Σ shards[i].len()`.
pub fn all_gather(shards: &[&[f32]], outs: &mut [&mut [f32]]) {
    let total: usize = shards.iter().map(|s| s.len()).sum();
    outs.par_iter_mut().for_each(|out| {
        assert_eq!(out.len(), total, "all_gather size mismatch");
        let mut off = 0;
        for s in shards {
            out[off..off + s.len()].copy_from_slice(s);
            off += s.len();
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadcast_copies_to_all() {
        let src = vec![1.0f32, 2.0, 3.0];
        let mut a = vec![0.0; 3];
        let mut b = vec![9.0; 3];
        broadcast(&src, &mut [&mut a, &mut b]);
        assert_eq!(a, src);
        assert_eq!(b, src);
    }

    #[test]
    fn reduce_sum_adds_sources() {
        let s1 = vec![1.0f32, 2.0];
        let s2 = vec![10.0f32, 20.0];
        let mut dst = vec![0.0; 2];
        reduce_sum(&[&s1, &s2], &mut dst);
        assert_eq!(dst, vec![11.0, 22.0]);
    }

    #[test]
    fn all_reduce_makes_buffers_identical() {
        let mut a = vec![1.0f32, 0.0];
        let mut b = vec![2.0f32, 5.0];
        let mut c = vec![3.0f32, -1.0];
        all_reduce_sum(&mut [&mut a, &mut b, &mut c]);
        assert_eq!(a, vec![6.0, 4.0]);
        assert_eq!(b, a);
        assert_eq!(c, a);
    }

    #[test]
    fn all_reduce_single_buffer_noop() {
        let mut a = vec![4.0f32];
        all_reduce_sum(&mut [&mut a]);
        assert_eq!(a, vec![4.0]);
        all_reduce_sum(&mut []);
    }

    #[test]
    fn all_gather_concatenates_in_rank_order() {
        let s0 = vec![1.0f32];
        let s1 = vec![2.0f32, 3.0];
        let mut o0 = vec![0.0; 3];
        let mut o1 = vec![0.0; 3];
        all_gather(&[&s0, &s1], &mut [&mut o0, &mut o1]);
        assert_eq!(o0, vec![1.0, 2.0, 3.0]);
        assert_eq!(o1, o0);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn broadcast_size_mismatch_panics() {
        let src = vec![1.0f32, 2.0];
        let mut bad = vec![0.0; 3];
        broadcast(&src, &mut [&mut bad]);
    }

    #[test]
    fn all_reduce_deterministic_order() {
        // Floating-point reduction order is fixed: same inputs, same bits.
        let mk = || (vec![0.1f32, 0.2], vec![0.3f32, 0.7], vec![1e-8f32, -0.9]);
        let (mut a1, mut b1, mut c1) = mk();
        all_reduce_sum(&mut [&mut a1, &mut b1, &mut c1]);
        let (mut a2, mut b2, mut c2) = mk();
        all_reduce_sum(&mut [&mut a2, &mut b2, &mut c2]);
        assert_eq!(a1, a2);
    }
}
