//! The paper's §5.1 communication analysis: 1D versus 1.5D partitioning.
//!
//! For moving the `n × d` feature matrix once per SpMM:
//!
//! * **1D** performs `P` broadcasts of `n·d/P` elements, each at the root's
//!   full link fan-out;
//! * **1.5D** (replication factor `c = 2`) performs two rounds of
//!   group-local broadcasts (groups of `P/2`) followed by a cross-group
//!   reduction of `n·d/(P/2)` elements over the inter-group links.
//!
//! On DGX-1's hybrid cube mesh the cross-group reduction sees only 2 links,
//! making 1.5D 1.5× *slower* than 1D; on DGX-A100's NVSwitch every phase
//! sees 12 links and 1.5D is 4/3 *faster* — but needs twice the memory,
//! which is why MG-GCN ships 1D only (§5.1's conclusion).

use mggcn_gpusim::MachineSpec;

/// Communication times (seconds) for moving `nd_bytes` of feature data
/// through one staged SpMM under each strategy.
#[derive(Clone, Copy, Debug)]
pub struct CommAnalysis {
    pub t_1d: f64,
    pub t_15d: f64,
    /// Memory replication factor of 1.5D relative to 1D.
    pub mem_factor_15d: f64,
}

impl CommAnalysis {
    /// Ratio `t_15d / t_1d` — above 1.0 means 1D wins.
    pub fn slowdown_15d(&self) -> f64 {
        self.t_15d / self.t_1d
    }
}

/// Evaluate both strategies on `machine` for a feature payload of
/// `nd_bytes` (the full `n × d × 4` matrix).
pub fn analyze(machine: &MachineSpec, nd_bytes: f64) -> CommAnalysis {
    let p = machine.gpu_count();
    assert!(p >= 4 && p.is_multiple_of(2), "analysis assumes an even GPU count ≥ 4");
    let all: Vec<usize> = (0..p).collect();

    // 1D: P broadcasts of nd/P bytes at the full-group fan-out.
    let bw_full = machine.broadcast_bw(0, &all);
    let t_1d = p as f64 * (nd_bytes / p as f64) / bw_full;

    // 1.5D with c = 2: groups are the machine's two halves.
    let group: Vec<usize> = (0..p / 2).collect();
    let bw_group = machine.broadcast_bw(0, &group);
    let cross = vec![0usize, p / 2];
    let bw_cross = machine.reduce_bw(0, &cross);
    // Each of the two rounds broadcasts nd / (P/2) bytes inside each group
    // (the two groups run concurrently), at group-local bandwidth.
    let per_round = nd_bytes / (p as f64 / 2.0);
    let t_broadcasts = 2.0 * per_round / bw_group;
    // Final concurrent reduction between the groups.
    let t_reduce = per_round / bw_cross;
    CommAnalysis { t_1d, t_15d: t_broadcasts + t_reduce, mem_factor_15d: 2.0 }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dgx_v100_1d_wins_by_three_halves() {
        // §5.1: "the 1.5D algorithm is slower on DGX-1 by a factor of 2/3"
        // i.e. t_1d / t_15d = 2/3 — 1.5D takes 1.5x as long.
        let a = analyze(&MachineSpec::dgx_v100(), 1.0e9);
        assert!(
            (a.slowdown_15d() - 1.5).abs() < 0.05,
            "slowdown {}",
            a.slowdown_15d()
        );
    }

    #[test]
    fn dgx_a100_15d_wins_by_four_thirds() {
        // §5.1: on DGX-A100 1.5D is faster by 4/3 (t_1d = nd/12l vs nd/16l).
        let a = analyze(&MachineSpec::dgx_a100(), 1.0e9);
        assert!(
            (a.slowdown_15d() - 0.75).abs() < 0.05,
            "slowdown {}",
            a.slowdown_15d()
        );
    }

    #[test]
    fn memory_factor_is_two() {
        let a = analyze(&MachineSpec::dgx_a100(), 1.0e9);
        assert_eq!(a.mem_factor_15d, 2.0);
    }

    #[test]
    fn times_scale_linearly_with_payload() {
        let m = MachineSpec::dgx_v100();
        let a1 = analyze(&m, 1.0e9);
        let a2 = analyze(&m, 2.0e9);
        assert!((a2.t_1d / a1.t_1d - 2.0).abs() < 1e-9);
        assert!((a2.t_15d / a1.t_15d - 2.0).abs() < 1e-9);
    }
}
