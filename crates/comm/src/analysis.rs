//! The paper's §5.1 communication analysis: 1D versus 1.5D partitioning.
//!
//! For moving the `n × d` feature matrix once per SpMM:
//!
//! * **1D** performs `P` broadcasts of `n·d/P` elements, each at the root's
//!   full link fan-out;
//! * **1.5D** (replication factor `c = 2`) performs two rounds of
//!   group-local broadcasts (groups of `P/2`) followed by a cross-group
//!   reduction of `n·d/(P/2)` elements over the inter-group links.
//!
//! On DGX-1's hybrid cube mesh the cross-group reduction sees only 2 links,
//! making 1.5D 1.5× *slower* than 1D; on DGX-A100's NVSwitch every phase
//! sees 12 links and 1.5D is 4/3 *faster* — but needs twice the memory,
//! which is why MG-GCN ships 1D only (§5.1's conclusion).

use mggcn_gpusim::MachineSpec;

/// DGX-1 hybrid cube mesh: links each GPU has toward the full machine —
/// the fan-out a 1D full-machine broadcast pipelines over (§5.1).
pub const DGX1_FULL_LINKS: u32 = 6;
/// DGX-1: links each GPU has inside its quad — the fan-out of a 1.5D
/// intra-group broadcast.
pub const DGX1_GROUP_LINKS: u32 = 4;
/// DGX-1: links between a GPU and its cross-quad mirror — the fan-out of
/// the 1.5D cross-group reduction, and the reason 1.5D loses on DGX-1.
pub const DGX1_CROSS_LINKS: u32 = 2;
/// DGX-A100: NVSwitch links per GPU, seen by every phase of either
/// strategy — the reason 1.5D wins there.
pub const A100_SWITCH_LINKS: u32 = 12;
/// Per-link NVLink bandwidth (one direction), bytes/second, both machines.
pub const NVLINK_BW: f64 = 25.0e9;

/// Communication times (seconds) for moving `nd_bytes` of feature data
/// through one staged SpMM under each strategy.
#[derive(Clone, Copy, Debug)]
pub struct CommAnalysis {
    pub t_1d: f64,
    pub t_15d: f64,
    /// Memory replication factor of 1.5D relative to 1D.
    pub mem_factor_15d: f64,
}

impl CommAnalysis {
    /// Ratio `t_15d / t_1d` — above 1.0 means 1D wins.
    pub fn slowdown_15d(&self) -> f64 {
        self.t_15d / self.t_1d
    }
}

/// Evaluate both strategies on `machine` for a feature payload of
/// `nd_bytes` (the full `n × d × 4` matrix).
pub fn analyze(machine: &MachineSpec, nd_bytes: f64) -> CommAnalysis {
    let p = machine.gpu_count();
    assert!(p >= 4 && p.is_multiple_of(2), "analysis assumes an even GPU count ≥ 4");
    let all: Vec<usize> = (0..p).collect();

    // 1D: P broadcasts of nd/P bytes at the full-group fan-out.
    let bw_full = machine.broadcast_bw(0, &all);
    let t_1d = p as f64 * (nd_bytes / p as f64) / bw_full;

    // 1.5D with c = 2: groups are the machine's two halves.
    let group: Vec<usize> = (0..p / 2).collect();
    let bw_group = machine.broadcast_bw(0, &group);
    let cross = vec![0usize, p / 2];
    let bw_cross = machine.reduce_bw(0, &cross);
    // Each group broadcasts half the matrix in total — P/2 rounds of nd/P
    // bytes each (the two groups run concurrently) — at group-local
    // bandwidth. In units of the reduction payload nd/(P/2) that is P/4
    // rounds; at P = 8 this is the paper's "2 broadcasts" figure.
    let per_round = nd_bytes / (p as f64 / 2.0);
    let t_broadcasts = (p as f64 / 4.0) * per_round / bw_group;
    // Final concurrent reduction between the groups.
    let t_reduce = per_round / bw_cross;
    CommAnalysis { t_1d, t_15d: t_broadcasts + t_reduce, mem_factor_15d: 2.0 }
}

/// Closed-form 1D per-stage broadcast payload for **one** staged SpMM
/// over an operand of width `d`: stage `s` broadcasts partition `s`'s
/// tile, `rows[s] · d · 4` bytes (§5.1, f32 features). This is exactly
/// what the trainer's `bcast-H` collectives move, so traced byte counters
/// can be checked against it.
pub fn stage_broadcast_bytes(rows: &[usize], d: usize) -> Vec<u64> {
    rows.iter().map(|&r| 4 * r as u64 * d as u64).collect()
}

/// Closed-form cross-partition fan-out payload for a sharded serving
/// tier: shard `s` answers its queries from `foreign_rows[s]` feature
/// rows homed on *other* shards, each `d` f32 values — `4·rows·d` bytes
/// per shard, the same §5.1 byte accounting as
/// [`stage_broadcast_bytes`] applied to the partition boundary instead
/// of the broadcast stages. The cache-aware partitioner's objective is
/// the sum of this vector; a differential test asserts it exactly
/// against a brute-force per-query neighborhood walk.
pub fn partition_fanout_bytes(foreign_rows: &[usize], d: usize) -> Vec<u64> {
    stage_broadcast_bytes(foreign_rows, d)
}

/// Closed-form per-stage broadcast bytes for one full training epoch of
/// the MG-GCN schedule (forward + backward over `dims.len() - 1` layers).
///
/// Every staged SpMM broadcasts each stage's tile once, so per-epoch stage
/// totals are `rows[s] · 4 · Σ widths`, where the width sum follows the
/// trainer's operand choices:
/// * forward layer `l` moves width `d_in` when the §4.4 operand-order
///   optimization applies (`op_order_opt` and `d_in < d_out`), else
///   `d_out`;
/// * backward layer `l` moves width `d_out`, except layer 0 when
///   `skip_first_backward_spmm` elides it entirely (§4.4).
///
/// This counts **inter-GPU traffic**, matching what a byte-accounting
/// tracer observes: with a single participant (`rows.len() == 1`) the
/// broadcast is a local no-op — the tile is already resident — so the
/// volume is zero even though the schedule still carries the op.
pub fn epoch_broadcast_bytes(
    rows: &[usize],
    dims: &[usize],
    op_order_opt: bool,
    skip_first_backward_spmm: bool,
) -> Vec<u64> {
    assert!(dims.len() >= 2, "need at least one layer");
    if rows.len() == 1 {
        return vec![0];
    }
    let layers = dims.len() - 1;
    let mut width_sum = 0u64;
    for l in 0..layers {
        let (d_in, d_out) = (dims[l], dims[l + 1]);
        width_sum += if op_order_opt && d_in < d_out { d_in as u64 } else { d_out as u64 };
    }
    for l in (0..layers).rev() {
        if l == 0 && skip_first_backward_spmm {
            continue;
        }
        width_sum += dims[l + 1] as u64;
    }
    rows.iter().map(|&r| 4 * r as u64 * width_sum).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mggcn_gpusim::engine::OpDesc;
    use mggcn_gpusim::{Category, Schedule};

    /// DES makespan of the 1D pattern: P serialized full-machine broadcasts
    /// of `nd/P` bytes each (every broadcast occupies all comm lanes, so
    /// the lane FIFO serializes them — exactly the closed form's model).
    fn sim_1d_comm(machine: &MachineSpec, nd_bytes: f64) -> f64 {
        let mut m = machine.clone();
        m.comm_latency = 0.0; // compare pure bandwidth terms exactly
        let p = m.gpu_count();
        let all: Vec<usize> = (0..p).collect();
        let lanes: Vec<(usize, usize)> = all.iter().map(|&g| (g, 1)).collect();
        let mut s: Schedule<()> = Schedule::new(m.clone());
        s.launch_overhead = 0.0;
        for root in 0..p {
            let bw = m.broadcast_bw(root, &all);
            s.collective(
                &lanes,
                nd_bytes / p as f64,
                bw,
                OpDesc::staged(Category::Comm, "bcast", root),
                &[],
                None,
            );
        }
        s.simulate().report.makespan
    }

    /// DES makespan of the 1.5D pattern (c = 2): the two groups broadcast
    /// their half of the matrix concurrently (P/2 rounds of `nd/P` bytes,
    /// serialized per group by the lane FIFO), then the P/2 cross-group
    /// pairs reduce `nd/(P/2)` bytes each, all pairs concurrent.
    fn sim_15d_comm(machine: &MachineSpec, nd_bytes: f64) -> f64 {
        let mut m = machine.clone();
        m.comm_latency = 0.0;
        let p = m.gpu_count();
        assert!(p >= 4 && p.is_multiple_of(2));
        let half = p / 2;
        let g0: Vec<usize> = (0..half).collect();
        let g1: Vec<usize> = (half..p).collect();
        let lanes0: Vec<(usize, usize)> = g0.iter().map(|&g| (g, 1)).collect();
        let lanes1: Vec<(usize, usize)> = g1.iter().map(|&g| (g, 1)).collect();
        let mut s: Schedule<()> = Schedule::new(m.clone());
        s.launch_overhead = 0.0;
        for r in 0..half {
            s.collective(
                &lanes0,
                nd_bytes / p as f64,
                m.broadcast_bw(r, &g0),
                OpDesc::staged(Category::Comm, "bcast", r),
                &[],
                None,
            );
            s.collective(
                &lanes1,
                nd_bytes / p as f64,
                m.broadcast_bw(half + r, &g1),
                OpDesc::staged(Category::Comm, "bcast", half + r),
                &[],
                None,
            );
        }
        for a in 0..half {
            let pair = [a, a + half];
            s.collective(
                &[(a, 1), (a + half, 1)],
                nd_bytes / half as f64,
                m.reduce_bw(a, &pair),
                OpDesc::new(Category::Comm, "reduce"),
                &[],
                None,
            );
        }
        s.simulate().report.makespan
    }

    #[test]
    fn link_constants_match_the_machine_specs() {
        let v = MachineSpec::dgx_v100();
        let all: Vec<usize> = (0..8).collect();
        let quad: Vec<usize> = (0..4).collect();
        assert_eq!(v.effective_links(0, &all), DGX1_FULL_LINKS);
        assert_eq!(v.effective_links(0, &quad), DGX1_GROUP_LINKS);
        assert_eq!(v.effective_links(0, &[0, 4]), DGX1_CROSS_LINKS);
        assert!((v.broadcast_bw(0, &all) - DGX1_FULL_LINKS as f64 * NVLINK_BW).abs() < 1.0);
        let a = MachineSpec::dgx_a100();
        assert_eq!(a.effective_links(0, &all), A100_SWITCH_LINKS);
        assert!((a.broadcast_bw(0, &all) - A100_SWITCH_LINKS as f64 * NVLINK_BW).abs() < 1.0);
    }

    #[test]
    fn nic_sweep_pins_the_1d_15d_crossover() {
        // On the split-quad V100 cluster the closed forms are
        //   t_1d  = nd / min(6L, nic)            (every stage crosses nodes)
        //   t_15d = nd / (2·4L) + nd / (4·min(2L, nic))
        // with L = NVLINK_BW. Above nic = 4L both sides saturate on links
        // and the §5.1 DGX-1 verdict holds (1.5D 1.5× slower); the unique
        // tie is at nic* = DGX1_GROUP_LINKS · NVLINK_BW = 100 GB/s, and
        // below it 1.5D wins because only its reduction pays the NIC.
        let nd = 1.0e9;
        let nic_star = DGX1_GROUP_LINKS as f64 * NVLINK_BW;
        for nic_gbps in [10.0, 25.0, 50.0, 75.0, 90.0, 100.0, 110.0, 125.0, 150.0, 200.0] {
            let nic = nic_gbps * 1.0e9;
            let m = MachineSpec::v100_quad_cluster(nic);
            let a = analyze(&m, nd);
            // Closed form vs the DES on the same machine: exact agreement.
            let (t1, t15) = (sim_1d_comm(&m, nd), sim_15d_comm(&m, nd));
            assert!((t1 - a.t_1d).abs() / a.t_1d < 1e-9, "nic {nic_gbps}: 1D {t1} vs {}", a.t_1d);
            assert!(
                (t15 - a.t_15d).abs() / a.t_15d < 1e-9,
                "nic {nic_gbps}: 1.5D {t15} vs {}",
                a.t_15d
            );
            // The crossover itself.
            let s = a.slowdown_15d();
            if nic < nic_star {
                assert!(s < 1.0 - 1e-9, "nic {nic_gbps} GB/s: expected 1.5D win, got {s}");
            } else if nic > nic_star {
                assert!(s > 1.0 + 1e-9, "nic {nic_gbps} GB/s: expected 1D win, got {s}");
            } else {
                assert!((s - 1.0).abs() < 1e-9, "nic {nic_gbps} GB/s: expected tie, got {s}");
            }
        }
        // At full NIC speed the split-quad cluster reproduces §5.1's DGX-1
        // ratio, tying the sweep back to the paper's single-node verdict.
        let fast = analyze(&MachineSpec::v100_quad_cluster(f64::INFINITY), nd);
        assert!((fast.slowdown_15d() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn closed_forms_match_simulation_on_single_node_machines() {
        let nd = 4.0e8;
        for m in [MachineSpec::dgx_v100(), MachineSpec::dgx_a100()] {
            let a = analyze(&m, nd);
            assert!((sim_1d_comm(&m, nd) - a.t_1d).abs() / a.t_1d < 1e-9, "{}", m.name);
            assert!((sim_15d_comm(&m, nd) - a.t_15d).abs() / a.t_15d < 1e-9, "{}", m.name);
        }
    }

    #[test]
    fn dgx_v100_1d_wins_by_three_halves() {
        // §5.1: "the 1.5D algorithm is slower on DGX-1 by a factor of 2/3"
        // i.e. t_1d / t_15d = 2/3 — 1.5D takes 1.5x as long.
        let a = analyze(&MachineSpec::dgx_v100(), 1.0e9);
        assert!((a.slowdown_15d() - 1.5).abs() < 0.05, "slowdown {}", a.slowdown_15d());
    }

    #[test]
    fn dgx_a100_15d_wins_by_four_thirds() {
        // §5.1: on DGX-A100 1.5D is faster by 4/3 (t_1d = nd/12l vs nd/16l).
        let a = analyze(&MachineSpec::dgx_a100(), 1.0e9);
        assert!((a.slowdown_15d() - 0.75).abs() < 0.05, "slowdown {}", a.slowdown_15d());
    }

    #[test]
    fn memory_factor_is_two() {
        let a = analyze(&MachineSpec::dgx_a100(), 1.0e9);
        assert_eq!(a.mem_factor_15d, 2.0);
    }

    #[test]
    fn times_scale_linearly_with_payload() {
        let m = MachineSpec::dgx_v100();
        let a1 = analyze(&m, 1.0e9);
        let a2 = analyze(&m, 2.0e9);
        assert!((a2.t_1d / a1.t_1d - 2.0).abs() < 1e-9);
        assert!((a2.t_15d / a1.t_15d - 2.0).abs() < 1e-9);
    }

    #[test]
    fn stage_bytes_are_tile_rows_times_width() {
        assert_eq!(stage_broadcast_bytes(&[3, 2], 5), vec![60, 40]);
    }

    #[test]
    fn partition_fanout_matches_stage_accounting() {
        // Same closed form, applied at the partition boundary: 4·rows·d.
        assert_eq!(partition_fanout_bytes(&[7, 0, 11], 16), vec![448, 0, 704]);
    }

    #[test]
    fn epoch_bytes_plain_schedule() {
        // dims [4, 8, 2], no optimizations: forward moves d_out (8 then 2),
        // backward moves d_out (2 then 8) — width sum 20.
        let b = epoch_broadcast_bytes(&[10, 6], &[4, 8, 2], false, false);
        assert_eq!(b, vec![10 * 4 * 20, 6 * 4 * 20]);
    }

    #[test]
    fn epoch_bytes_honor_op_order_and_skip() {
        // Same dims with §4.4 enabled: forward layer 0 is growing (4 < 8)
        // so it moves d_in = 4; layer 1 shrinks so still d_out = 2.
        // Backward layer 1 moves 2; layer 0's SpMM is skipped.
        // Width sum = 4 + 2 + 2 = 8.
        let b = epoch_broadcast_bytes(&[10, 6], &[4, 8, 2], true, true);
        assert_eq!(b, vec![10 * 4 * 8, 6 * 4 * 8]);
    }

    #[test]
    fn epoch_bytes_single_gpu_move_nothing() {
        // P = 1: the broadcast op still exists in the schedule, but with
        // one participant no bytes cross a link, so the communication
        // volume — what a tracer counts — is zero.
        let b = epoch_broadcast_bytes(&[7], &[3, 3], false, false);
        assert_eq!(b, vec![0]);
    }
}
