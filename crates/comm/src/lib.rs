//! NCCL-substitute collectives for the MG-GCN reproduction.
//!
//! The paper drives all inter-GPU movement through NCCL broadcast (the
//! staged SpMM of §4.1/§4.3) and all-reduce (the weight gradients, §4.1).
//! Here each collective exists on two planes:
//!
//! * **data plane** ([`collectives`]) — operates on the per-device host
//!   arenas of the virtual machine, producing exactly the values NCCL
//!   would;
//! * **cost plane** — the caller prices the transfer with
//!   [`mggcn_gpusim::MachineSpec::broadcast_bw`] /
//!   [`allreduce_bw`](mggcn_gpusim::MachineSpec::allreduce_bw) and enqueues
//!   it as a [`Work::Comm`](mggcn_gpusim::Work) collective on the engine.
//!
//! [`analysis`] reproduces the paper's §5.1 link-count arithmetic comparing
//! 1D against 1.5D partitioning on both machines.

#![forbid(unsafe_code)]

pub mod analysis;
pub mod collectives;

pub use collectives::{all_gather, all_reduce_sum, broadcast, reduce_sum};
