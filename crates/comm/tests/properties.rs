//! Property-based tests for the collectives: NCCL semantics on arbitrary
//! payloads and rank counts, plus invariants of the §5.1 analysis.

use mggcn_comm::analysis::analyze;
use mggcn_comm::{all_gather, all_reduce_sum, broadcast, reduce_sum};
use mggcn_gpusim::MachineSpec;
use proptest::prelude::*;

fn payloads() -> impl Strategy<Value = Vec<Vec<f32>>> {
    (2usize..8, 1usize..64).prop_flat_map(|(ranks, len)| {
        proptest::collection::vec(proptest::collection::vec(-100.0f32..100.0, len), ranks)
    })
}

proptest! {
    #[test]
    fn broadcast_makes_all_ranks_equal_to_root(mut bufs in payloads()) {
        let src = bufs[0].clone();
        let mut refs: Vec<&mut [f32]> = bufs.iter_mut().map(|b| b.as_mut_slice()).collect();
        broadcast(&src, &mut refs);
        for b in &bufs {
            prop_assert_eq!(b, &src);
        }
    }

    #[test]
    fn all_reduce_equals_reduce_then_broadcast(bufs in payloads()) {
        // Path A: all_reduce.
        let mut a = bufs.clone();
        {
            let mut refs: Vec<&mut [f32]> = a.iter_mut().map(|b| b.as_mut_slice()).collect();
            all_reduce_sum(&mut refs);
        }
        // Path B: reduce to rank 0, then broadcast.
        let mut total = vec![0.0f32; bufs[0].len()];
        {
            let srcs: Vec<&[f32]> = bufs.iter().map(|b| b.as_slice()).collect();
            reduce_sum(&srcs, &mut total);
        }
        let mut b = bufs.clone();
        {
            let mut refs: Vec<&mut [f32]> = b.iter_mut().map(|x| x.as_mut_slice()).collect();
            broadcast(&total, &mut refs);
        }
        prop_assert_eq!(a, b);
    }

    #[test]
    fn all_reduce_is_sum(bufs in payloads()) {
        let expect: Vec<f32> = (0..bufs[0].len())
            .map(|i| bufs.iter().map(|b| b[i]).sum())
            .collect();
        let mut work = bufs.clone();
        let mut refs: Vec<&mut [f32]> = work.iter_mut().map(|b| b.as_mut_slice()).collect();
        all_reduce_sum(&mut refs);
        for b in &work {
            for (got, want) in b.iter().zip(&expect) {
                prop_assert!((got - want).abs() < 1e-3, "{got} vs {want}");
            }
        }
    }

    #[test]
    fn all_gather_preserves_every_shard(bufs in payloads()) {
        let total_len: usize = bufs.iter().map(Vec::len).sum();
        let shards: Vec<&[f32]> = bufs.iter().map(|b| b.as_slice()).collect();
        let mut out1 = vec![0.0f32; total_len];
        let mut out2 = vec![0.0f32; total_len];
        all_gather(&shards, &mut [&mut out1, &mut out2]);
        prop_assert_eq!(&out1, &out2);
        let mut off = 0;
        for shard in &bufs {
            prop_assert_eq!(&out1[off..off + shard.len()], shard.as_slice());
            off += shard.len();
        }
    }

    #[test]
    fn analysis_is_positive_and_linear(nd in 1.0e6f64..1.0e12) {
        for machine in [MachineSpec::dgx_v100(), MachineSpec::dgx_a100()] {
            let a = analyze(&machine, nd);
            prop_assert!(a.t_1d > 0.0);
            prop_assert!(a.t_15d > 0.0);
            let a2 = analyze(&machine, nd * 3.0);
            prop_assert!((a2.t_1d / a.t_1d - 3.0).abs() < 1e-6);
            prop_assert!((a2.t_15d / a.t_15d - 3.0).abs() < 1e-6);
        }
    }

    #[test]
    fn ratio_is_machine_constant(nd in 1.0e6f64..1.0e12) {
        // The 1.5D/1D ratio depends only on topology, never on payload.
        let v = analyze(&MachineSpec::dgx_v100(), nd).slowdown_15d();
        prop_assert!((v - 1.5).abs() < 1e-9);
        let a = analyze(&MachineSpec::dgx_a100(), nd).slowdown_15d();
        prop_assert!((a - 0.75).abs() < 1e-9);
    }
}
