//! In-tree, dependency-free stand-in for the `rand` crate.
//!
//! The build environment resolves crates hermetically (no registry access),
//! so the workspace vendors the *small* slice of `rand` 0.8 it actually
//! uses: [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] methods `gen`, `gen_range` and `gen_bool`. The generator is a
//! xoshiro256** seeded through SplitMix64 — the same family `SmallRng`
//! uses upstream — so streams are deterministic, fast, and of more than
//! adequate quality for graph generation and weight initialization.
//!
//! Sequences differ from upstream `rand` (nothing in the workspace relies
//! on the exact values, only on determinism per seed).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A random number generator's low-level interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value of a standard-distribution type (uniform over the
    /// type's range; floats uniform in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform sample from a half-open or inclusive range. Panics when the
    /// range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial with success probability `p` (`0.0 ≤ p ≤ 1.0`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range: {p}");
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types with a standard uniform distribution for [`Rng::gen`].
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1) as u128;
                if span == 0 || span > u64::MAX as u128 {
                    // Full-width range: every value is fair game.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span as u64) as $t)
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, seedable generator (xoshiro256**).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as rand does for small seeds.
            let mut x = state;
            let mut next = move || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            Self { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(SmallRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..10);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(0u32..=4);
            assert!(y <= 4);
            let f = rng.gen_range(-1.5f32..2.5);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / 10_000.0;
        assert!((frac - 0.25).abs() < 0.03, "frac {frac}");
    }

    use super::RngCore;
}
