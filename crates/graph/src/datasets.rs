//! Benchmark dataset stat cards (paper Table 1).
//!
//! | Dataset  | n     | m     | d(0) | d(L) | k   |
//! |----------|-------|-------|------|------|-----|
//! | Cora     | 3.3K  | 9.2K  | 3.7K | 6    | 3   |
//! | Arxiv    | 169K  | 1.16M | 128  | 40   | 7   |
//! | Papers   | 111M  | 1.61B | 128  | 172  | 15  |
//! | Products | 2.5M  | 126M  | 104  | 47   | 52  |
//! | Proteins | 8.74M | 1.3B  | 128  | 256  | 150 |
//! | Reddit   | 233K  | 115M  | 602  | 41   | 492 |
//!
//! The timing simulator consumes these cards directly; real training runs
//! use [`DatasetCard::materialize`] to build a degree-matched synthetic
//! replica at a chosen scale (1.0 = paper size).

use crate::generators::chung_lu;
use crate::generators::degree::{self, DegreeModel};
use crate::graph::Graph;

/// Statistics of one benchmark graph plus the knobs needed to synthesize a
/// structurally similar replica.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DatasetCard {
    pub name: &'static str,
    /// Number of vertices.
    pub n: usize,
    /// Number of (directed) edges.
    pub m: usize,
    /// Input feature dimension d(0).
    pub feat_dim: usize,
    /// Number of classes d(L).
    pub classes: usize,
    /// Average degree k (as reported in Table 1).
    pub avg_degree: f64,
    /// Power-law exponent of the degree distribution used for replicas and
    /// tile statistics. Real social/co-purchase graphs fall in 1.8–2.8;
    /// denser biological graphs are flatter.
    pub degree_exponent: f64,
}

impl DatasetCard {
    pub const fn new(
        name: &'static str,
        n: usize,
        m: usize,
        feat_dim: usize,
        classes: usize,
        avg_degree: f64,
        degree_exponent: f64,
    ) -> Self {
        Self { name, n, m, feat_dim, classes, avg_degree, degree_exponent }
    }

    /// The degree model this card implies.
    pub fn degree_model(&self) -> DegreeModel {
        DegreeModel::power_law(self.avg_degree, self.degree_exponent, self.n)
    }

    /// Build a materialized synthetic replica at `scale` (fraction of the
    /// paper-size vertex count; 1.0 reproduces `n`). Edge count scales with
    /// the vertex count so the average degree is preserved — average degree,
    /// not raw size, is what drives the paper's kernel behaviour (§6.4).
    pub fn materialize(&self, scale: f64, seed: u64) -> Graph {
        let n = ((self.n as f64 * scale).round() as usize).max(16);
        let degrees = degree::sample_degrees(&self.degree_model(), n, seed);
        let adj = chung_lu::generate(&degrees, seed ^ 0x9e37_79b9);
        Graph::synthesize(adj, self.feat_dim, self.classes, seed ^ 0x85eb_ca6b)
    }

    /// Bytes of the input feature matrix at paper scale (fp32).
    pub fn feature_bytes(&self) -> u64 {
        self.n as u64 * self.feat_dim as u64 * 4
    }

    /// Bytes of the CSR adjacency at paper scale (8B row_ptr + 4B idx + 4B val).
    pub fn adjacency_bytes(&self) -> u64 {
        (self.n as u64 + 1) * 8 + self.m as u64 * 8
    }
}

/// Cora citation network.
pub const CORA: DatasetCard = DatasetCard::new("Cora", 3_300, 9_200, 3_700, 6, 3.0, 2.9);
/// OGBN-Arxiv citation network.
pub const ARXIV: DatasetCard = DatasetCard::new("Arxiv", 169_000, 1_160_000, 128, 40, 7.0, 2.6);
/// OGBN-Papers100M citation network (largest benchmark).
pub const PAPERS: DatasetCard =
    DatasetCard::new("Papers", 111_000_000, 1_610_000_000, 128, 172, 15.0, 2.4);
/// OGBN-Products co-purchase network.
pub const PRODUCTS: DatasetCard =
    DatasetCard::new("Products", 2_500_000, 126_000_000, 104, 47, 52.0, 2.2);
/// OGBN-Proteins biological association network.
pub const PROTEINS: DatasetCard =
    DatasetCard::new("Proteins", 8_740_000, 1_300_000_000, 128, 256, 150.0, 1.9);
/// Reddit post-to-post graph (September 2014).
pub const REDDIT: DatasetCard =
    DatasetCard::new("Reddit", 233_000, 115_000_000, 602, 41, 492.0, 1.8);

/// All Table 1 datasets, in the paper's row order.
pub const BENCHMARKS: [DatasetCard; 6] = [CORA, ARXIV, PAPERS, PRODUCTS, PROTEINS, REDDIT];

/// The five datasets used in the per-figure runtime comparisons (Papers is
/// only used in Table 3 / §6.6).
pub const FIGURE_DATASETS: [DatasetCard; 5] = [CORA, ARXIV, PRODUCTS, PROTEINS, REDDIT];

/// Look a card up by (case-insensitive) name.
pub fn by_name(name: &str) -> Option<DatasetCard> {
    BENCHMARKS.iter().find(|c| c.name.eq_ignore_ascii_case(name)).copied()
}

/// The BTER-scaled Arxiv family for Fig 9: `factor` ∈ {1, 2, …, 128}
/// multiplies the average degree; n is fixed; features are 512-d with 40
/// classes, per §6 "Datasets".
pub fn scaled_arxiv(factor: u32) -> DatasetCard {
    debug_assert!(factor.is_power_of_two() && factor <= 128);
    // Leak-free static names for the 8 known factors.
    const NAMES: [&str; 8] = ["1x", "2x", "4x", "8x", "16x", "32x", "64x", "128x"];
    let name = NAMES[factor.trailing_zeros() as usize];
    DatasetCard::new(
        name,
        ARXIV.n,
        ARXIV.m * factor as usize,
        512,
        40,
        ARXIV.avg_degree * factor as f64,
        ARXIV.degree_exponent,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values_match_paper() {
        assert_eq!(REDDIT.n, 233_000);
        assert_eq!(REDDIT.feat_dim, 602);
        assert_eq!(REDDIT.classes, 41);
        assert_eq!(PAPERS.m, 1_610_000_000);
        assert_eq!(PROTEINS.classes, 256);
        assert_eq!(PRODUCTS.avg_degree, 52.0);
    }

    #[test]
    fn lookup_by_name_case_insensitive() {
        assert_eq!(by_name("reddit"), Some(REDDIT));
        assert_eq!(by_name("Products"), Some(PRODUCTS));
        assert_eq!(by_name("nope"), None);
    }

    #[test]
    fn scaled_arxiv_scales_edges_not_vertices() {
        let s = scaled_arxiv(32);
        assert_eq!(s.n, ARXIV.n);
        assert_eq!(s.m, ARXIV.m * 32);
        assert_eq!(s.feat_dim, 512);
        assert_eq!(s.name, "32x");
    }

    #[test]
    fn materialize_small_replica() {
        let g = CORA.materialize(0.1, 7);
        assert!(g.n() > 100);
        assert_eq!(g.features.cols(), CORA.feat_dim);
        assert!(g.labels.iter().all(|&l| (l as usize) < CORA.classes));
        // Average degree should be in the right ballpark.
        let k = g.adj.nnz() as f64 / g.n() as f64;
        assert!(k > 1.0 && k < 10.0, "avg degree {k}");
    }

    #[test]
    fn byte_accounting() {
        // Reddit features: 233K x 602 x 4B ≈ 561 MB.
        let mb = REDDIT.feature_bytes() as f64 / (1024.0 * 1024.0);
        assert!((mb - 535.0).abs() < 10.0, "reddit features {mb} MiB");
    }
}
