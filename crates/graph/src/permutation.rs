//! Random vertex permutations (paper §5.2).
//!
//! "In order to balance the number of nonzeros in each part `A^{ij}` in the
//! uniformly partitioned sparse matrices, we randomly permute their
//! vertices." The permutation is the *entire* load-balancing strategy —
//! no graph partitioner — which is what makes it cheap enough to absorb
//! into preprocessing.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A uniformly random permutation of `0..n` (Fisher–Yates).
/// `perm[old] = new`.
pub fn random_permutation(n: usize, seed: u64) -> Vec<u32> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut perm: Vec<u32> = (0..n as u32).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        perm.swap(i, j);
    }
    perm
}

/// Invert a permutation: `inv[new] = old`.
pub fn invert(perm: &[u32]) -> Vec<u32> {
    let mut inv = vec![0u32; perm.len()];
    for (old, &new) in perm.iter().enumerate() {
        inv[new as usize] = old as u32;
    }
    inv
}

/// Check that `perm` is a bijection on `0..n`.
pub fn is_permutation(perm: &[u32]) -> bool {
    let mut seen = vec![false; perm.len()];
    for &p in perm {
        let idx = p as usize;
        if idx >= perm.len() || seen[idx] {
            return false;
        }
        seen[idx] = true;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_permutation_is_bijection() {
        let p = random_permutation(1000, 1);
        assert!(is_permutation(&p));
    }

    #[test]
    fn invert_roundtrips() {
        let p = random_permutation(257, 2);
        let inv = invert(&p);
        for old in 0..257 {
            assert_eq!(inv[p[old] as usize] as usize, old);
        }
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(random_permutation(64, 1), random_permutation(64, 2));
    }

    #[test]
    fn is_permutation_rejects_duplicates() {
        assert!(!is_permutation(&[0, 0, 2]));
        assert!(!is_permutation(&[0, 3]));
        assert!(is_permutation(&[2, 0, 1]));
    }

    #[test]
    fn tiny_sizes() {
        assert_eq!(random_permutation(0, 1), Vec::<u32>::new());
        assert_eq!(random_permutation(1, 1), vec![0]);
    }
}
