//! Power-law degree models.
//!
//! The paper's synthetic study "profile\[s\] the degree distribution of the
//! Arxiv dataset, then by increasing the average degree and fixing the
//! number of vertices, generate\[s\] 8 synthetic datasets" (§6). We model a
//! degree distribution as a truncated discrete power law `p(d) ∝ d^{-γ}`,
//! `d ∈ [1, d_max]`, rescaled to hit a target average degree.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A truncated power-law degree distribution with a target mean.
#[derive(Clone, Debug, PartialEq)]
pub struct DegreeModel {
    /// Target average degree.
    pub avg_degree: f64,
    /// Power-law exponent γ (larger ⇒ lighter tail).
    pub exponent: f64,
    /// Largest representable degree (capped at the vertex count).
    pub max_degree: usize,
}

impl DegreeModel {
    /// Standard model: the max degree follows the natural cutoff
    /// `d_max ≈ min(n - 1, avg · √n)` seen in social-network datasets.
    pub fn power_law(avg_degree: f64, exponent: f64, n: usize) -> Self {
        let cutoff = (avg_degree * (n as f64).sqrt()).ceil() as usize;
        Self { avg_degree, exponent, max_degree: cutoff.clamp(2, n.saturating_sub(1).max(2)) }
    }

    /// Mean of the un-scaled truncated power law.
    fn raw_mean(&self) -> f64 {
        let mut num = 0.0;
        let mut den = 0.0;
        // Direct summation is fine: max_degree is at most a few million and
        // this runs once per model.
        let cap = self.max_degree.min(1 << 22);
        for d in 1..=cap {
            let w = (d as f64).powf(-self.exponent);
            num += d as f64 * w;
            den += w;
        }
        num / den
    }
}

/// Sample a degree sequence of length `n` with mean ≈ `model.avg_degree`.
///
/// Draws from the truncated power law by inverse-CDF on a precomputed
/// table, then rescales multiplicatively so the empirical mean matches the
/// target (the paper scales 1×…128× exactly this way: same shape, scaled
/// mean).
pub fn sample_degrees(model: &DegreeModel, n: usize, seed: u64) -> Vec<u32> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let cap = model.max_degree.min(1 << 16);
    // CDF table of the truncated power law.
    let mut cdf = Vec::with_capacity(cap);
    let mut acc = 0.0f64;
    for d in 1..=cap {
        acc += (d as f64).powf(-model.exponent);
        cdf.push(acc);
    }
    let total = acc;
    let raw: Vec<f64> = (0..n)
        .map(|_| {
            let u: f64 = rng.gen::<f64>() * total;
            let idx = cdf.partition_point(|&c| c < u);
            (idx + 1) as f64
        })
        .collect();
    let raw_mean = raw.iter().sum::<f64>() / n as f64;
    let scale = model.avg_degree / raw_mean;
    raw.iter().map(|&d| ((d * scale).round().max(1.0)) as u32).collect()
}

/// Empirical mean of a degree sequence.
pub fn mean_degree(degrees: &[u32]) -> f64 {
    degrees.iter().map(|&d| d as f64).sum::<f64>() / degrees.len() as f64
}

/// Sort a degree sequence descending — models the "original ordering" of
/// many published datasets where hubs cluster at low vertex ids, the load
/// imbalance the paper's §5.2 permutation fixes.
pub fn sorted_descending(degrees: &[u32]) -> Vec<u32> {
    let mut d = degrees.to_vec();
    d.sort_unstable_by(|a, b| b.cmp(a));
    d
}

// Suppress dead-code warning: raw_mean is exercised by tests and available
// for model calibration.
#[allow(dead_code)]
fn _use(m: &DegreeModel) -> f64 {
    m.raw_mean()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampled_mean_matches_target() {
        let model = DegreeModel::power_law(10.0, 2.2, 10_000);
        let d = sample_degrees(&model, 10_000, 1);
        let m = mean_degree(&d);
        assert!((m - 10.0).abs() < 1.5, "mean {m}");
    }

    #[test]
    fn degrees_are_positive() {
        let model = DegreeModel::power_law(3.0, 2.8, 1000);
        let d = sample_degrees(&model, 1000, 2);
        assert!(d.iter().all(|&x| x >= 1));
    }

    #[test]
    fn heavier_tail_has_larger_max() {
        let light = DegreeModel::power_law(20.0, 3.0, 50_000);
        let heavy = DegreeModel::power_law(20.0, 1.9, 50_000);
        let dl = sample_degrees(&light, 50_000, 3);
        let dh = sample_degrees(&heavy, 50_000, 3);
        assert!(dh.iter().max() > dl.iter().max());
    }

    #[test]
    fn deterministic_for_seed() {
        let model = DegreeModel::power_law(5.0, 2.5, 100);
        assert_eq!(sample_degrees(&model, 100, 9), sample_degrees(&model, 100, 9));
    }

    #[test]
    fn sorted_descending_is_monotone() {
        let d = sorted_descending(&[3, 1, 4, 1, 5]);
        assert_eq!(d, vec![5, 4, 3, 1, 1]);
    }
}
