//! Chung–Lu expected-degree random graphs.
//!
//! Given a weight (degree) sequence `w`, edges are drawn with probability
//! proportional to `w_u · w_v`. We use the fast "edge-skipping-free"
//! variant: draw `m = Σw / 2` endpoint pairs from the weight distribution
//! via an alias table, insert both directions, and binarize. Expected
//! degrees match `w` up to collision losses, which is the standard
//! approximation (and BTER's phase 2).

use mggcn_sparse::{Coo, Csr};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Walker alias table for O(1) sampling from a discrete distribution.
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<u32>,
}

impl AliasTable {
    /// Build from non-negative weights. Panics if all weights are zero.
    pub fn new(weights: &[f64]) -> Self {
        let n = weights.len();
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "alias table needs positive total weight");
        let mut prob: Vec<f64> = weights.iter().map(|&w| w * n as f64 / total).collect();
        let mut alias = vec![0u32; n];
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            alias[s as usize] = l;
            prob[l as usize] = (prob[l as usize] + prob[s as usize]) - 1.0;
            if prob[l as usize] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Numerical leftovers: pin to certain acceptance.
        for i in small.into_iter().chain(large) {
            prob[i as usize] = 1.0;
        }
        Self { prob, alias }
    }

    /// Draw one index.
    #[inline]
    pub fn sample(&self, rng: &mut SmallRng) -> u32 {
        let i = rng.gen_range(0..self.prob.len());
        if rng.gen::<f64>() < self.prob[i] {
            i as u32
        } else {
            self.alias[i]
        }
    }
}

/// Generate a Chung–Lu graph from a degree sequence. The result is a binary
/// adjacency with both edge directions present (no self loops) and roughly
/// `Σ degrees` directed edges.
pub fn generate(degrees: &[u32], seed: u64) -> Csr {
    let n = degrees.len();
    let weights: Vec<f64> = degrees.iter().map(|&d| d as f64).collect();
    let table = AliasTable::new(&weights);
    let mut rng = SmallRng::seed_from_u64(seed);
    let undirected_edges: u64 = degrees.iter().map(|&d| d as u64).sum::<u64>() / 2;
    let mut coo = Coo::with_capacity(n, n, (undirected_edges * 2) as usize);
    for _ in 0..undirected_edges {
        let u = table.sample(&mut rng);
        let v = table.sample(&mut rng);
        if u != v {
            coo.push(u, v, 1.0);
            coo.push(v, u, 1.0);
        }
    }
    let mut csr = coo.to_csr();
    csr.binarize();
    csr
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alias_table_distribution() {
        let table = AliasTable::new(&[1.0, 3.0]);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut counts = [0u32; 2];
        for _ in 0..40_000 {
            counts[table.sample(&mut rng) as usize] += 1;
        }
        let frac = counts[1] as f64 / 40_000.0;
        assert!((frac - 0.75).abs() < 0.02, "frac {frac}");
    }

    #[test]
    fn alias_table_uniform_weights() {
        let table = AliasTable::new(&[2.0; 5]);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[table.sample(&mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn generate_is_symmetric_binary_loop_free() {
        let degrees = vec![4u32; 100];
        let g = generate(&degrees, 5);
        let d = g.to_dense();
        for r in 0..100 {
            assert_eq!(d.get(r, r), 0.0, "self loop at {r}");
            for c in 0..100 {
                assert_eq!(d.get(r, c), d.get(c, r), "asymmetry at ({r},{c})");
                assert!(d.get(r, c) == 0.0 || d.get(r, c) == 1.0);
            }
        }
    }

    #[test]
    fn generate_degree_scale_roughly_matches() {
        let degrees = vec![10u32; 2000];
        let g = generate(&degrees, 6);
        let avg = g.nnz() as f64 / 2000.0;
        // Collisions + dedup lose some edges; expect within 25%.
        assert!(avg > 7.0 && avg <= 10.5, "avg degree {avg}");
    }

    #[test]
    fn hubs_get_more_edges() {
        let mut degrees = vec![2u32; 500];
        degrees[0] = 100;
        let g = generate(&degrees, 7);
        let hub = g.row_nnz(0);
        let typical: usize = (1..500).map(|r| g.row_nnz(r)).sum::<usize>() / 499;
        assert!(hub > typical * 5, "hub {hub} vs typical {typical}");
    }
}
