//! R-MAT recursive-matrix graph generator (Chakrabarti, Zhan & Faloutsos).
//!
//! The standard scale-free generator for HPC graph benchmarks (Graph500
//! uses a = 0.57, b = c = 0.19, d = 0.05). Complements BTER: R-MAT gives
//! the heavy-tailed, community-less worst case for load balance, which
//! makes it a good stress input for the §5.2 permutation machinery.

use mggcn_sparse::{Coo, Csr};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// R-MAT quadrant probabilities; must sum to 1.
#[derive(Clone, Copy, Debug)]
pub struct RmatParams {
    pub a: f64,
    pub b: f64,
    pub c: f64,
    /// `d` is implied: `1 - a - b - c`.
    pub noise: f64,
}

impl RmatParams {
    /// Graph500 reference parameters.
    pub fn graph500() -> Self {
        Self { a: 0.57, b: 0.19, c: 0.19, noise: 0.1 }
    }

    fn d(&self) -> f64 {
        1.0 - self.a - self.b - self.c
    }
}

/// Generate an R-MAT graph with `2^scale` vertices and
/// `edge_factor · 2^scale` undirected edges (both directions inserted,
/// binarized, loop-free).
pub fn generate(scale: u32, edge_factor: usize, params: &RmatParams, seed: u64) -> Csr {
    assert!(params.d() >= 0.0, "quadrant probabilities exceed 1");
    let n = 1usize << scale;
    let m = n * edge_factor;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut coo = Coo::with_capacity(n, n, m * 2);
    for _ in 0..m {
        let (mut r0, mut r1, mut c0, mut c1) = (0usize, n, 0usize, n);
        for _ in 0..scale {
            // Per-level parameter noise keeps the degree tail realistic.
            let jitter = |p: f64, rng: &mut SmallRng| {
                (p * (1.0 - params.noise + 2.0 * params.noise * rng.gen::<f64>())).max(1e-6)
            };
            let (a, b, cq) = (
                jitter(params.a, &mut rng),
                jitter(params.b, &mut rng),
                jitter(params.c, &mut rng),
            );
            let dq = jitter(params.d().max(1e-6), &mut rng);
            let total = a + b + cq + dq;
            let x: f64 = rng.gen::<f64>() * total;
            let (row_hi, col_hi) = if x < a {
                (false, false)
            } else if x < a + b {
                (false, true)
            } else if x < a + b + cq {
                (true, false)
            } else {
                (true, true)
            };
            let rm = (r0 + r1) / 2;
            let cm = (c0 + c1) / 2;
            if row_hi {
                r0 = rm;
            } else {
                r1 = rm;
            }
            if col_hi {
                c0 = cm;
            } else {
                c1 = cm;
            }
        }
        let (u, v) = (r0 as u32, c0 as u32);
        if u != v {
            coo.push(u, v, 1.0);
            coo.push(v, u, 1.0);
        }
    }
    let mut csr = coo.to_csr();
    csr.binarize();
    csr
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_scale() {
        let g = generate(8, 8, &RmatParams::graph500(), 1);
        assert_eq!(g.rows(), 256);
        // Collisions lose some edges; expect within a factor of the target.
        let avg = g.nnz() as f64 / 256.0;
        assert!(avg > 4.0 && avg < 16.0, "avg degree {avg}");
    }

    #[test]
    fn skewed_parameters_make_hubs() {
        let g = generate(9, 8, &RmatParams::graph500(), 2);
        let max_deg = (0..g.rows()).map(|r| g.row_nnz(r)).max().unwrap();
        let avg = g.nnz() / g.rows();
        assert!(max_deg > avg * 5, "max {max_deg} vs avg {avg}");
    }

    #[test]
    fn uniform_parameters_are_balanced() {
        let p = RmatParams { a: 0.25, b: 0.25, c: 0.25, noise: 0.0 };
        let g = generate(9, 8, &p, 3);
        let max_deg = (0..g.rows()).map(|r| g.row_nnz(r)).max().unwrap();
        let avg = g.nnz() / g.rows();
        assert!(max_deg < avg * 4, "max {max_deg} vs avg {avg}");
    }

    #[test]
    fn symmetric_and_loop_free() {
        let g = generate(6, 4, &RmatParams::graph500(), 4);
        let d = g.to_dense();
        for i in 0..64 {
            assert_eq!(d.get(i, i), 0.0);
            for j in 0..64 {
                assert_eq!(d.get(i, j), d.get(j, i));
            }
        }
    }

    #[test]
    fn deterministic() {
        let a = generate(7, 4, &RmatParams::graph500(), 5);
        let b = generate(7, 4, &RmatParams::graph500(), 5);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "exceed 1")]
    fn invalid_params_rejected() {
        let p = RmatParams { a: 0.6, b: 0.3, c: 0.3, noise: 0.0 };
        let _ = generate(4, 2, &p, 1);
    }
}
