//! Synthetic graph generators.
//!
//! * [`degree`] — power-law degree models and degree-sequence sampling;
//! * [`chung_lu`] — expected-degree random graphs (BTER's phase-2 engine and
//!   the fast default for dataset replicas);
//! * [`bter`] — Block Two-level Erdős–Rényi, the generator the paper uses
//!   for its Fig 9 density-scaling study;
//! * [`sbm`] — planted-partition graphs with community-correlated labels and
//!   features, for accuracy experiments with known ground truth;
//! * [`rmat`] — recursive-matrix scale-free graphs (Graph500 flavour), the
//!   community-less heavy-tail stress case for load balancing.

pub mod bter;
pub mod chung_lu;
pub mod degree;
pub mod rmat;
pub mod sbm;
