//! Planted-partition stochastic block model with correlated features.
//!
//! The paper validates MG-GCN's learning correctness by matching DGL's
//! accuracy curve on Reddit (§6, "Model"). Reddit itself is gated, so we
//! provide a generator with *known* ground truth: vertices belong to `k`
//! communities, intra-community edges dominate, and features are noisy
//! community centroids. A GCN that correctly averages neighborhoods
//! denoises the features and beats a structure-blind MLP by a wide margin —
//! the same qualitative claim the paper makes for full-batch GCN training.

use crate::graph::{Graph, Split};
use mggcn_dense::Dense;
use mggcn_sparse::Coo;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rand_distributions::sample_normal;

/// Small local normal sampler (Box–Muller) so we stay within the approved
/// `rand` feature set.
mod rand_distributions {
    use rand::rngs::SmallRng;
    use rand::Rng;

    pub fn sample_normal(rng: &mut SmallRng, mean: f32, std: f32) -> f32 {
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
        mean + std * z
    }
}

/// Configuration for a planted-partition graph.
#[derive(Clone, Copy, Debug)]
pub struct SbmConfig {
    pub n: usize,
    pub communities: usize,
    /// Expected intra-community degree per vertex.
    pub intra_degree: f64,
    /// Expected inter-community degree per vertex.
    pub inter_degree: f64,
    pub feat_dim: usize,
    /// Feature noise std relative to unit centroid separation. Above ~1.0
    /// an MLP struggles while neighborhood averaging still recovers the
    /// signal.
    pub noise: f32,
}

impl SbmConfig {
    /// A Reddit-flavoured default: strong communities, high degree, noisy
    /// features.
    pub fn community_benchmark(n: usize, communities: usize) -> Self {
        Self { n, communities, intra_degree: 12.0, inter_degree: 2.0, feat_dim: 32, noise: 2.0 }
    }
}

/// Generate the graph: labels are the planted communities.
pub fn generate(cfg: &SbmConfig, seed: u64) -> Graph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let n = cfg.n;
    let k = cfg.communities;
    // Round-robin community assignment, then shuffle for realism.
    let mut community: Vec<u32> = (0..n).map(|i| (i % k) as u32).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        community.swap(i, j);
    }
    // Vertex lists per community for partner sampling.
    let mut members: Vec<Vec<u32>> = vec![Vec::new(); k];
    for (v, &c) in community.iter().enumerate() {
        members[c as usize].push(v as u32);
    }

    let mut coo =
        Coo::with_capacity(n, n, ((cfg.intra_degree + cfg.inter_degree) as usize + 1) * n);
    for v in 0..n as u32 {
        let c = community[v as usize] as usize;
        // Each vertex initiates ~half its expected edges; symmetric insert
        // doubles them back to the target.
        let intra = sample_count(&mut rng, cfg.intra_degree / 2.0);
        for _ in 0..intra {
            let peer = members[c][rng.gen_range(0..members[c].len())];
            if peer != v {
                coo.push(v, peer, 1.0);
                coo.push(peer, v, 1.0);
            }
        }
        let inter = sample_count(&mut rng, cfg.inter_degree / 2.0);
        for _ in 0..inter {
            let oc = rng.gen_range(0..k);
            let peer = members[oc][rng.gen_range(0..members[oc].len())];
            if peer != v && community[peer as usize] != c as u32 {
                coo.push(v, peer, 1.0);
                coo.push(peer, v, 1.0);
            }
        }
    }
    let mut adj = coo.to_csr();
    adj.binarize();

    // Community centroids: random unit-ish vectors.
    let centroids: Vec<Vec<f32>> =
        (0..k).map(|_| (0..cfg.feat_dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect()).collect();
    let mut features = Dense::zeros(n, cfg.feat_dim);
    for v in 0..n {
        let centroid = &centroids[community[v] as usize];
        let row = features.row_mut(v);
        for (f, &c) in row.iter_mut().zip(centroid) {
            *f = c + sample_normal(&mut rng, 0.0, cfg.noise);
        }
    }

    let split = Split::random(n, 0.3, 0.2, seed ^ 0x27d4_eb2f);
    Graph::new(adj, features, community, k, split)
}

/// Poisson-ish count via rounding an exponentialized uniform; cheap and
/// close enough for degree targets.
fn sample_count(rng: &mut SmallRng, mean: f64) -> usize {
    let jitter: f64 = rng.gen_range(0.5..1.5);
    (mean * jitter).round() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_communities() {
        let g = generate(&SbmConfig::community_benchmark(500, 5), 1);
        assert_eq!(g.classes, 5);
        assert!(g.labels.iter().all(|&l| l < 5));
        // Each community should be populated.
        let mut counts = [0usize; 5];
        for &l in &g.labels {
            counts[l as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c > 50));
    }

    #[test]
    fn intra_edges_dominate() {
        let g = generate(&SbmConfig::community_benchmark(1000, 4), 2);
        let mut intra = 0usize;
        let mut inter = 0usize;
        for v in 0..g.n() {
            for (u, _) in g.adj.row(v) {
                if g.labels[v] == g.labels[u as usize] {
                    intra += 1;
                } else {
                    inter += 1;
                }
            }
        }
        assert!(intra > inter * 3, "intra {intra} inter {inter}");
    }

    #[test]
    fn features_cluster_by_community() {
        let mut cfg = SbmConfig::community_benchmark(400, 2);
        cfg.noise = 0.1; // low noise so the check is crisp
        let g = generate(&cfg, 3);
        // Mean intra-class feature distance should beat inter-class.
        let mut intra = (0.0f64, 0usize);
        let mut inter = (0.0f64, 0usize);
        for v in (0..g.n()).step_by(7) {
            for u in (v + 1..g.n()).step_by(13) {
                let d: f32 = g
                    .features
                    .row(v)
                    .iter()
                    .zip(g.features.row(u))
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum();
                if g.labels[v] == g.labels[u] {
                    intra = (intra.0 + d as f64, intra.1 + 1);
                } else {
                    inter = (inter.0 + d as f64, inter.1 + 1);
                }
            }
        }
        assert!(intra.0 / (intra.1 as f64) < inter.0 / inter.1 as f64);
    }

    #[test]
    fn deterministic_for_seed() {
        let cfg = SbmConfig::community_benchmark(200, 3);
        let a = generate(&cfg, 11);
        let b = generate(&cfg, 11);
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.adj, b.adj);
    }
}
