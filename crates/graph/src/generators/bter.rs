//! Block Two-level Erdős–Rényi (BTER) generator — Kolda et al., SISC 2014.
//!
//! The paper generates its Fig 9 synthetic datasets with BTER: "BTER
//! requires a degree distribution and clustering coefficient by degree as
//! input and generates synthetic graphs matching those properties" (§6).
//!
//! Implementation follows the standard two-phase construction:
//!
//! 1. **Affinity blocks.** Vertices are sorted by degree and packed into
//!    blocks of `d + 1` vertices (where `d` is the first vertex's degree);
//!    each block is an Erdős–Rényi graph `G(b, ρ_d)` with `ρ_d = ccd(d)^⅓`,
//!    which yields per-degree clustering coefficient ≈ `ccd(d)`.
//! 2. **Excess degree.** Each vertex's leftover degree
//!    `e_v = d_v − ρ_d · (b − 1)` feeds a Chung–Lu pass that supplies the
//!    global (inter-block) edge structure.

use super::chung_lu::AliasTable;
use mggcn_sparse::{Coo, Csr};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Clustering-coefficient-by-degree profile `ccd(d)`.
#[derive(Clone, Copy, Debug)]
pub struct ClusteringProfile {
    /// Clustering coefficient of degree-2 vertices.
    pub base: f64,
    /// Decay rate: `ccd(d) = base · exp(-decay · (d - 2))`, clamped to
    /// `[0, 0.95]`. Real networks show exactly this decreasing profile.
    pub decay: f64,
}

impl ClusteringProfile {
    /// A profile resembling citation networks like Arxiv.
    pub fn arxiv_like() -> Self {
        Self { base: 0.6, decay: 0.01 }
    }

    pub fn ccd(&self, d: u32) -> f64 {
        (self.base * (-self.decay * (d.saturating_sub(2)) as f64).exp()).clamp(0.0, 0.95)
    }
}

/// Generate a BTER graph from a degree sequence and clustering profile.
/// Returns a binary, symmetric, loop-free adjacency.
pub fn generate(degrees: &[u32], profile: &ClusteringProfile, seed: u64) -> Csr {
    let n = degrees.len();
    let mut rng = SmallRng::seed_from_u64(seed);

    // Sort vertex ids by degree ascending (BTER packs like-degree vertices
    // together); keep the id mapping so output uses original ids.
    let mut by_degree: Vec<u32> = (0..n as u32).collect();
    by_degree.sort_unstable_by_key(|&v| degrees[v as usize]);

    let total_directed: u64 = degrees.iter().map(|&d| d as u64).sum();
    let mut coo = Coo::with_capacity(n, n, (total_directed + total_directed / 2) as usize);
    let mut excess: Vec<f64> = degrees.iter().map(|&d| d as f64).collect();

    // Phase 1: affinity blocks.
    let mut i = 0;
    while i < n {
        let d = degrees[by_degree[i] as usize].max(1);
        let block = ((d as usize) + 1).min(n - i);
        if block >= 2 {
            let rho = profile.ccd(d).cbrt().clamp(0.0, 1.0);
            for a in 0..block {
                for b in (a + 1)..block {
                    if rng.gen::<f64>() < rho {
                        let (u, v) = (by_degree[i + a], by_degree[i + b]);
                        coo.push(u, v, 1.0);
                        coo.push(v, u, 1.0);
                    }
                }
            }
            let spent = rho * (block - 1) as f64;
            for a in 0..block {
                let v = by_degree[i + a] as usize;
                excess[v] = (excess[v] - spent).max(0.0);
            }
        }
        i += block;
    }

    // Phase 2: Chung–Lu on the excess degrees.
    let excess_total: f64 = excess.iter().sum();
    if excess_total > 1.0 {
        let table = AliasTable::new(&excess);
        let undirected = (excess_total / 2.0).round() as u64;
        for _ in 0..undirected {
            let u = table.sample(&mut rng);
            let v = table.sample(&mut rng);
            if u != v {
                coo.push(u, v, 1.0);
                coo.push(v, u, 1.0);
            }
        }
    }

    let mut csr = coo.to_csr();
    csr.binarize();
    csr
}

/// Global clustering coefficient (transitivity): `3 · triangles / wedges`.
/// O(Σ d_v²) — use on test-sized graphs only.
pub fn global_clustering(a: &Csr) -> f64 {
    let n = a.rows();
    let mut triangles = 0u64;
    let mut wedges = 0u64;
    for v in 0..n {
        let neigh: Vec<u32> = a.row(v).map(|(c, _)| c).collect();
        let k = neigh.len() as u64;
        wedges += k * k.saturating_sub(1) / 2;
        for (x, &u) in neigh.iter().enumerate() {
            for &w in &neigh[x + 1..] {
                // Closed wedge if u—w edge exists (rows are sorted).
                let row: Vec<u32> = a.row(u as usize).map(|(c, _)| c).collect();
                if row.binary_search(&w).is_ok() {
                    triangles += 1;
                }
            }
        }
    }
    if wedges == 0 {
        0.0
    } else {
        triangles as f64 / wedges as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::chung_lu;

    #[test]
    fn ccd_decays_with_degree() {
        let p = ClusteringProfile::arxiv_like();
        assert!(p.ccd(2) > p.ccd(50));
        assert!(p.ccd(1000) >= 0.0);
    }

    #[test]
    fn bter_is_symmetric_and_loop_free() {
        let degrees = vec![5u32; 200];
        let g = generate(&degrees, &ClusteringProfile::arxiv_like(), 1);
        let d = g.to_dense();
        for r in 0..200 {
            assert_eq!(d.get(r, r), 0.0);
            for c in 0..200 {
                assert_eq!(d.get(r, c), d.get(c, r));
            }
        }
    }

    #[test]
    fn bter_has_higher_clustering_than_chung_lu() {
        let degrees = vec![8u32; 400];
        let bter = generate(&degrees, &ClusteringProfile::arxiv_like(), 2);
        let cl = chung_lu::generate(&degrees, 2);
        let cc_bter = global_clustering(&bter);
        let cc_cl = global_clustering(&cl);
        assert!(
            cc_bter > cc_cl * 2.0,
            "bter clustering {cc_bter} should dominate chung-lu {cc_cl}"
        );
    }

    #[test]
    fn bter_average_degree_tracks_input() {
        let degrees = vec![12u32; 1000];
        let g = generate(&degrees, &ClusteringProfile::arxiv_like(), 3);
        let avg = g.nnz() as f64 / 1000.0;
        assert!(avg > 8.0 && avg < 16.0, "avg {avg}");
    }

    #[test]
    fn deterministic_for_seed() {
        let degrees: Vec<u32> = (0..300).map(|i| 2 + (i % 7) as u32).collect();
        let a = generate(&degrees, &ClusteringProfile::arxiv_like(), 9);
        let b = generate(&degrees, &ClusteringProfile::arxiv_like(), 9);
        assert_eq!(a, b);
    }
}
