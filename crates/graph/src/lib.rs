//! Graph datasets and generators for the MG-GCN reproduction.
//!
//! The paper evaluates on six benchmark graphs (Table 1) plus BTER-generated
//! synthetic graphs that scale the Arxiv degree distribution 1×…128× (§6,
//! Fig 9). The real datasets are not redistributable here, so this crate
//! provides:
//!
//! * [`datasets`] — *stat cards* with the exact Table 1 statistics, used by
//!   the timing simulator (which needs only `n`, `m`, dims, and per-tile nnz
//!   statistics, never the actual edges), and synthetic *replicas* that can
//!   be materialized at any scale for real end-to-end training;
//! * [`generators`] — Chung–Lu, BTER (the paper's generator), planted
//!   partition SBM (for accuracy experiments where ground truth is known),
//!   and power-law degree-sequence tools;
//! * [`permutation`] — the §5.2 random-permutation load balancer;
//! * [`tilestats`] — per-tile nnz estimation for paper-scale graphs in
//!   original vs permuted ordering, without materializing edges;
//! * [`io`] — a parallel edge-list/MatrixMarket-subset reader (the PIGO
//!   substitute);
//! * [`sampling`] — k-hop frontiers and GraphSAGE-style fanout sampling,
//!   the mini-batch machinery whose neighborhood explosion (§1) motivates
//!   the paper's full-batch approach;
//! * [`partition`] — vertex-to-shard assignment for the serving tier:
//!   seeded random baseline and balance-capped label propagation.

//! # Example
//!
//! ```
//! use mggcn_graph::datasets;
//! use mggcn_graph::metrics::degree_stats;
//! use mggcn_graph::random_permutation;
//!
//! // Materialize a small Arxiv-shaped replica and permute it (§5.2).
//! let graph = datasets::ARXIV.materialize(0.01, 42);
//! let stats = degree_stats(&graph.adj);
//! assert!(stats.mean > 1.0);
//! let perm = random_permutation(graph.n(), 7);
//! let balanced = graph.permute(&perm);
//! assert_eq!(balanced.adj.nnz(), graph.adj.nnz());
//! ```

#![forbid(unsafe_code)]

pub mod connectivity;
pub mod datasets;
pub mod generators;
pub mod graph;
pub mod io;
pub mod metrics;
pub mod partition;
pub mod permutation;
pub mod sampling;
pub mod tilestats;

pub use datasets::{DatasetCard, BENCHMARKS};
pub use graph::{Graph, Split};
pub use permutation::random_permutation;
pub use tilestats::TileStats;
