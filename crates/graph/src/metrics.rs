//! Graph statistics — the numbers Table 1 reports and the properties the
//! synthetic generators must reproduce (degree distribution shape,
//! clustering, load-balance skew).

use mggcn_sparse::Csr;

/// Summary statistics of a graph's degree sequence.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DegreeStats {
    pub n: usize,
    pub m: usize,
    pub min: usize,
    pub max: usize,
    pub mean: f64,
    /// Coefficient of variation (σ / μ) — heavy tails push this up.
    pub cv: f64,
    /// Gini coefficient of the degree sequence in `[0, 1)` — 0 is
    /// perfectly regular, near 1 is hub-dominated.
    pub gini: f64,
}

/// Compute degree statistics of a CSR adjacency (out-degrees).
pub fn degree_stats(a: &Csr) -> DegreeStats {
    let n = a.rows();
    let degrees: Vec<usize> = (0..n).map(|r| a.row_nnz(r)).collect();
    let m = a.nnz();
    let mean = m as f64 / n.max(1) as f64;
    let var = degrees.iter().map(|&d| (d as f64 - mean).powi(2)).sum::<f64>() / n.max(1) as f64;
    let cv = if mean > 0.0 { var.sqrt() / mean } else { 0.0 };
    let mut sorted = degrees.clone();
    sorted.sort_unstable();
    // Gini via the sorted-rank identity.
    let total: f64 = sorted.iter().map(|&d| d as f64).sum();
    let gini = if total > 0.0 {
        let weighted: f64 =
            sorted.iter().enumerate().map(|(i, &d)| (i + 1) as f64 * d as f64).sum();
        (2.0 * weighted) / (n as f64 * total) - (n as f64 + 1.0) / n as f64
    } else {
        0.0
    };
    DegreeStats {
        n,
        m,
        min: sorted.first().copied().unwrap_or(0),
        max: sorted.last().copied().unwrap_or(0),
        mean,
        cv,
        gini,
    }
}

/// Log₂-bucketed degree histogram: `hist[k]` counts vertices with degree
/// in `[2^k, 2^(k+1))`; `hist[0]` also includes degree-0 and degree-1.
pub fn degree_histogram(a: &Csr) -> Vec<usize> {
    let mut hist: Vec<usize> = Vec::new();
    for r in 0..a.rows() {
        let d = a.row_nnz(r);
        let bucket = if d <= 1 { 0 } else { (usize::BITS - 1 - d.leading_zeros()) as usize };
        if bucket >= hist.len() {
            hist.resize(bucket + 1, 0);
        }
        hist[bucket] += 1;
    }
    hist
}

/// Fraction of edges whose endpoints both land in the heaviest `frac`
/// of vertices (by degree) — a quick hub-concentration measure.
pub fn hub_edge_fraction(a: &Csr, frac: f64) -> f64 {
    let n = a.rows();
    if n == 0 || a.nnz() == 0 {
        return 0.0;
    }
    let mut by_degree: Vec<usize> = (0..n).collect();
    by_degree.sort_unstable_by_key(|&v| std::cmp::Reverse(a.row_nnz(v)));
    let k = ((n as f64 * frac).ceil() as usize).max(1);
    let mut is_hub = vec![false; n];
    for &v in &by_degree[..k] {
        is_hub[v] = true;
    }
    let mut hub_edges = 0usize;
    for r in 0..n {
        if !is_hub[r] {
            continue;
        }
        hub_edges += a.row(r).filter(|&(c, _)| is_hub[c as usize]).count();
    }
    hub_edges as f64 / a.nnz() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{chung_lu, degree};
    use mggcn_sparse::Coo;

    fn regular_ring(n: usize) -> Csr {
        let mut coo = Coo::new(n, n);
        for i in 0..n as u32 {
            coo.push(i, (i + 1) % n as u32, 1.0);
            coo.push((i + 1) % n as u32, i, 1.0);
        }
        coo.to_csr()
    }

    #[test]
    fn regular_graph_has_zero_gini() {
        let s = degree_stats(&regular_ring(50));
        assert_eq!(s.min, 2);
        assert_eq!(s.max, 2);
        assert!((s.mean - 2.0).abs() < 1e-9);
        assert!(s.cv < 1e-9);
        assert!(s.gini.abs() < 1e-9);
    }

    #[test]
    fn power_law_graph_has_high_gini() {
        let model = degree::DegreeModel::power_law(8.0, 2.0, 3000);
        let degrees = degree::sample_degrees(&model, 3000, 1);
        let g = chung_lu::generate(&degrees, 1);
        let s = degree_stats(&g);
        assert!(s.gini > 0.3, "gini {}", s.gini);
        assert!(s.cv > 0.8, "cv {}", s.cv);
        assert!(s.max > 20 * s.mean as usize / 2, "max {}", s.max);
    }

    #[test]
    fn histogram_buckets_cover_all_vertices() {
        let g = regular_ring(64);
        let h = degree_histogram(&g);
        let total: usize = h.iter().sum();
        assert_eq!(total, 64);
        // All vertices have degree 2 -> bucket 1.
        assert_eq!(h[1], 64);
    }

    #[test]
    fn hub_fraction_bounds() {
        let model = degree::DegreeModel::power_law(10.0, 2.0, 1000);
        let degrees = degree::sample_degrees(&model, 1000, 3);
        let g = chung_lu::generate(&degrees, 3);
        let f = hub_edge_fraction(&g, 0.1);
        assert!((0.0..=1.0).contains(&f));
        // In a heavy-tailed graph the top decile concentrates edges well
        // above the 1% a uniform graph would give.
        assert!(f > 0.05, "hub edge fraction {f}");
    }

    #[test]
    fn empty_graph_is_safe() {
        let g = Csr::empty(10, 10);
        let s = degree_stats(&g);
        assert_eq!(s.m, 0);
        assert_eq!(s.gini, 0.0);
        assert_eq!(hub_edge_fraction(&g, 0.5), 0.0);
        assert_eq!(degree_histogram(&g), vec![10]);
    }
}
