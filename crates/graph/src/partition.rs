//! Vertex partitioning for the sharded serving tier.
//!
//! CaPGNN's observation (PAPERS.md) is that feature caching and graph
//! partitioning must be co-designed: a shard's propagation cache only pays
//! off when the vertices it serves share neighborhoods, and every k-hop
//! neighbor homed on *another* shard is feature traffic across the
//! interconnect. This module provides the partitioners the cluster front
//! end chooses between:
//!
//! * [`random_assignment`] — the seeded baseline: balanced, locality-blind;
//! * [`label_propagation`] — greedy locality refinement over the CSR
//!   adjacency under a hard balance cap: each vertex repeatedly moves to
//!   the shard where most of its neighbors live, unless that shard is
//!   already at capacity.
//!
//! Both are deterministic for a (graph, shards, seed) triple. The
//! *objective* being minimized — cross-shard k-hop fan-out bytes — is
//! scored by `comm::analysis::partition_fanout_bytes` over the foreign-row
//! counts; `mggcn-cluster` owns that accounting.

use mggcn_sparse::Csr;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Seeded balanced random assignment of `n` vertices to `shards` shards:
/// a random permutation dealt round-robin, so shard sizes differ by at
/// most one and placement carries no locality information.
pub fn random_assignment(n: usize, shards: usize, seed: u64) -> Vec<u32> {
    assert!(shards >= 1, "need at least one shard");
    let mut order: Vec<u32> = (0..n as u32).collect();
    let mut rng = SmallRng::seed_from_u64(seed);
    for i in (1..n).rev() {
        let j = rng.gen_range(0..i + 1);
        order.swap(i, j);
    }
    let mut assignment = vec![0u32; n];
    for (i, &v) in order.iter().enumerate() {
        assignment[v as usize] = (i % shards) as u32;
    }
    assignment
}

/// Per-shard vertex counts of an assignment.
pub fn shard_sizes(assignment: &[u32], shards: usize) -> Vec<usize> {
    let mut sizes = vec![0usize; shards];
    for &s in assignment {
        sizes[s as usize] += 1;
    }
    sizes
}

/// Greedy label-propagation partitioning under a balance cap.
///
/// Starts from [`random_assignment`] and runs `rounds` sweeps; in each
/// sweep every vertex (visited in a seeded random order) moves to the
/// shard holding the plurality of its out-neighbors, provided that shard
/// is below `cap = ceil(n/shards · (1 + slack))` — the cap keeps shards
/// usable as serving replicas (a degenerate all-on-one-shard "partition"
/// would trivially minimize cut). Ties prefer the current shard, then the
/// lowest shard id, so the result is deterministic.
pub fn label_propagation(
    adj: &Csr,
    shards: usize,
    rounds: usize,
    slack: f64,
    seed: u64,
) -> Vec<u32> {
    assert!(shards >= 1, "need at least one shard");
    assert!(slack >= 0.0, "slack must be non-negative");
    let n = adj.rows();
    let mut assignment = random_assignment(n, shards, seed);
    if shards == 1 || n == 0 {
        return assignment;
    }
    let cap = ((n as f64 / shards as f64) * (1.0 + slack)).ceil() as usize;
    let mut sizes = shard_sizes(&assignment, shards);

    let mut order: Vec<u32> = (0..n as u32).collect();
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut votes = vec![0usize; shards];
    for _ in 0..rounds {
        for i in (1..n).rev() {
            let j = rng.gen_range(0..i + 1);
            order.swap(i, j);
        }
        let mut moved = 0usize;
        for &v in &order {
            let current = assignment[v as usize] as usize;
            votes.iter_mut().for_each(|c| *c = 0);
            let mut any = false;
            for (u, _) in adj.row(v as usize) {
                votes[assignment[u as usize] as usize] += 1;
                any = true;
            }
            if !any {
                continue;
            }
            // Plurality shard with room; ties keep the current assignment.
            let mut best = current;
            for (s, &count) in votes.iter().enumerate() {
                if s != current && count > votes[best] && sizes[s] < cap {
                    best = s;
                }
            }
            if best != current {
                sizes[current] -= 1;
                sizes[best] += 1;
                assignment[v as usize] = best as u32;
                moved += 1;
            }
        }
        if moved == 0 {
            break;
        }
    }
    assignment
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::sbm::{self, SbmConfig};

    #[test]
    fn random_assignment_is_balanced_and_deterministic() {
        let a = random_assignment(103, 4, 9);
        let b = random_assignment(103, 4, 9);
        assert_eq!(a, b);
        let sizes = shard_sizes(&a, 4);
        assert_eq!(sizes.iter().sum::<usize>(), 103);
        assert!(sizes.iter().all(|&s| s == 25 || s == 26), "sizes {sizes:?}");
        assert_ne!(a, random_assignment(103, 4, 10));
    }

    #[test]
    fn label_propagation_respects_the_balance_cap() {
        let graph = sbm::generate(&SbmConfig::community_benchmark(400, 4), 3);
        let shards = 4;
        let assignment = label_propagation(&graph.adj, shards, 8, 0.1, 7);
        let cap = ((400.0 / shards as f64) * 1.1).ceil() as usize;
        let sizes = shard_sizes(&assignment, shards);
        assert_eq!(sizes.iter().sum::<usize>(), 400);
        assert!(sizes.iter().all(|&s| s <= cap), "sizes {sizes:?} exceed cap {cap}");
    }

    #[test]
    fn label_propagation_cuts_fewer_edges_than_random_on_communities() {
        // An SBM community graph has planted locality; label propagation
        // must find it.
        let graph = sbm::generate(&SbmConfig::community_benchmark(600, 4), 11);
        let cut = |assignment: &[u32]| -> usize {
            let mut cut = 0;
            for v in 0..graph.n() {
                for (u, _) in graph.adj.row(v) {
                    if assignment[v] != assignment[u as usize] {
                        cut += 1;
                    }
                }
            }
            cut
        };
        let random = random_assignment(graph.n(), 4, 5);
        let refined = label_propagation(&graph.adj, 4, 8, 0.1, 5);
        assert!(
            cut(&refined) < cut(&random) / 2,
            "refined cut {} vs random cut {}",
            cut(&refined),
            cut(&random)
        );
    }

    #[test]
    fn single_shard_is_trivial() {
        let graph = sbm::generate(&SbmConfig::community_benchmark(50, 2), 1);
        let assignment = label_propagation(&graph.adj, 1, 4, 0.1, 1);
        assert!(assignment.iter().all(|&s| s == 0));
    }
}
