//! Per-tile nonzero statistics for paper-scale graphs.
//!
//! The timing simulator needs, for every tile `A^{ij}` of the partitioned
//! adjacency, its nonzero count — that is what determines per-stage SpMM
//! cost and therefore load balance (paper Fig 6). Materializing a 1.6B-edge
//! graph to count tile nnz is pointless; under the Chung–Lu edge model the
//! expectation is exact and cheap:
//!
//! `nnz(i, j) ≈ m · (S_i / W) · (S_j / W)`
//!
//! where `S_i` is the total degree weight of part `i` and `W = Σ S_i`.
//! The two vertex orderings of §5.2/§6.2 differ only in how degree weight
//! maps to parts:
//!
//! * **Original** — published datasets tend to have hubs clustered at low
//!   ids (crawl order, degree-sorted exports). We model the adversarial
//!   version: vertices sorted by degree descending, so part 0 soaks up the
//!   heavy tail.
//! * **Permuted** — a random permutation spreads weight uniformly:
//!   `S_i = W · |part i| / n`.

use crate::datasets::DatasetCard;
use mggcn_sparse::{PartitionVec, TileGrid};

/// Vertex ordering assumed when mapping degree weight onto parts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VertexOrdering {
    /// Hubs first (degree-sorted) — the load-imbalanced "original ordering".
    Original,
    /// Random permutation (§5.2) — balanced in expectation.
    Permuted,
}

/// How strongly the "original ordering" correlates degree with vertex id.
/// 1.0 would be a perfect degree sort; real published orderings (crawl
/// order, community-clustered exports) are only partially correlated.
/// Calibrated so the §6.2 permutation gain lands near the paper's measured
/// ~1.5× on Products/Reddit at 8 GPUs.
const ORIGINAL_ORDER_SKEW: f64 = 0.25;

/// Tile-level nnz statistics of a (possibly never-materialized) partitioned
/// adjacency matrix.
#[derive(Clone, Debug)]
pub struct TileStats {
    parts: usize,
    /// Rows (vertices) per part.
    part_rows: Vec<usize>,
    /// `parts × parts` row-major expected nnz.
    tile_nnz: Vec<u64>,
    n: usize,
}

impl TileStats {
    /// Model tile statistics for a dataset card under the given ordering.
    pub fn model(card: &DatasetCard, parts: usize, ordering: VertexOrdering) -> Self {
        let p = PartitionVec::uniform(card.n, parts);
        let part_rows: Vec<usize> = (0..parts).map(|i| p.len(i)).collect();
        let uniform: Vec<f64> = part_rows.iter().map(|&r| r as f64).collect();
        let weights = match ordering {
            VertexOrdering::Permuted => uniform,
            VertexOrdering::Original => {
                // Blend a perfect degree sort with the uniform layout to
                // model partial degree/id correlation.
                let sorted = degree_weight_sorted_desc(card, &p);
                let s_total: f64 = sorted.iter().sum();
                let u_total: f64 = uniform.iter().sum();
                sorted
                    .iter()
                    .zip(&uniform)
                    .map(|(&s, &u)| {
                        ORIGINAL_ORDER_SKEW * s / s_total
                            + (1.0 - ORIGINAL_ORDER_SKEW) * u / u_total
                    })
                    .collect()
            }
        };
        let w_total: f64 = weights.iter().sum();
        let m = card.m as f64;
        let mut tile_nnz = Vec::with_capacity(parts * parts);
        for i in 0..parts {
            for j in 0..parts {
                let e = m * (weights[i] / w_total) * (weights[j] / w_total);
                tile_nnz.push(e.round() as u64);
            }
        }
        Self { parts, part_rows, tile_nnz, n: card.n }
    }

    /// Exact statistics from a materialized tile grid.
    pub fn exact(grid: &TileGrid) -> Self {
        let parts = grid.row_partition().parts();
        let part_rows = (0..parts).map(|i| grid.row_partition().len(i)).collect();
        let tile_nnz = grid.tile_nnz().iter().map(|&x| x as u64).collect();
        Self { parts, part_rows, tile_nnz, n: grid.row_partition().total() }
    }

    pub fn parts(&self) -> usize {
        self.parts
    }

    pub fn n(&self) -> usize {
        self.n
    }

    /// Rows owned by part `i`.
    pub fn rows_of(&self, i: usize) -> usize {
        self.part_rows[i]
    }

    /// Expected nnz of tile `(i, j)`.
    pub fn nnz(&self, i: usize, j: usize) -> u64 {
        self.tile_nnz[i * self.parts + j]
    }

    pub fn total_nnz(&self) -> u64 {
        self.tile_nnz.iter().sum()
    }

    /// Load imbalance of a broadcast stage `s`: across GPUs `j`, the compute
    /// at stage `s` is proportional to `nnz(j, s)`; imbalance is
    /// `max_j / mean_j`. 1.0 is perfect.
    pub fn stage_imbalance(&self, s: usize) -> f64 {
        let col: Vec<u64> = (0..self.parts).map(|j| self.nnz(j, s)).collect();
        let max = *col.iter().max().expect("nonempty") as f64;
        let mean = col.iter().sum::<u64>() as f64 / self.parts as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }

    /// Worst stage imbalance across all stages.
    pub fn max_imbalance(&self) -> f64 {
        (0..self.parts).map(|s| self.stage_imbalance(s)).fold(1.0, f64::max)
    }
}

/// Degree weight per part when vertices are sorted by degree descending.
///
/// Computed analytically from the truncated power law: for each degree value
/// `d` (descending) we know how many vertices have it (`n · p(d)`); those
/// vertices occupy the next run of ranks, which maps onto parts.
fn degree_weight_sorted_desc(card: &DatasetCard, p: &PartitionVec) -> Vec<f64> {
    let model = card.degree_model();
    let cap = model.max_degree.min(1 << 16);
    // Un-normalized pmf and its normalizer.
    let mut z = 0.0f64;
    for d in 1..=cap {
        z += (d as f64).powf(-model.exponent);
    }
    // The power law is rescaled so the mean hits avg_degree (mirrors
    // `degree::sample_degrees`); degree value scales linearly.
    let raw_mean: f64 =
        (1..=cap).map(|d| d as f64 * (d as f64).powf(-model.exponent)).sum::<f64>() / z;
    let scale = model.avg_degree / raw_mean;

    let n = card.n as f64;
    let parts = p.parts();
    let mut weights = vec![0.0f64; parts];
    let mut rank = 0.0f64; // vertices consumed so far (descending degree)
    for d in (1..=cap).rev() {
        let count = n * (d as f64).powf(-model.exponent) / z;
        let degree = d as f64 * scale;
        // Spread `count` vertices of this degree across the parts their
        // ranks fall into.
        let mut remaining = count;
        let mut pos = rank;
        while remaining > 1e-9 {
            let part = p.part_of((pos as usize).min(card.n - 1));
            let room = (p.end(part) as f64 - pos).max(0.0);
            let take = remaining.min(room.max(1e-9));
            weights[part] += take * degree;
            remaining -= take;
            pos += take;
            if part + 1 >= parts && room <= 0.0 {
                weights[parts - 1] += remaining * degree;
                break;
            }
        }
        rank += count;
        if rank >= n {
            break;
        }
    }
    weights
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets;

    #[test]
    fn permuted_is_balanced() {
        let s = TileStats::model(&datasets::PRODUCTS, 8, VertexOrdering::Permuted);
        assert!(s.max_imbalance() < 1.01, "imbalance {}", s.max_imbalance());
    }

    #[test]
    fn original_is_imbalanced() {
        let s = TileStats::model(&datasets::PRODUCTS, 8, VertexOrdering::Original);
        assert!(s.max_imbalance() > 1.5, "imbalance {}", s.max_imbalance());
    }

    #[test]
    fn model_conserves_total_nnz_approximately() {
        for ordering in [VertexOrdering::Original, VertexOrdering::Permuted] {
            let s = TileStats::model(&datasets::REDDIT, 4, ordering);
            let total = s.total_nnz() as f64;
            let target = datasets::REDDIT.m as f64;
            assert!(
                (total - target).abs() / target < 0.05,
                "{ordering:?}: total {total} vs m {target}"
            );
        }
    }

    #[test]
    fn exact_stats_from_grid() {
        use mggcn_sparse::{Coo, TileGrid};
        let mut coo = Coo::new(8, 8);
        for i in 0..8u32 {
            coo.push(i, (i + 1) % 8, 1.0);
        }
        let grid = TileGrid::symmetric_uniform(&coo.to_csr(), 2);
        let s = TileStats::exact(&grid);
        assert_eq!(s.total_nnz(), 8);
        assert_eq!(s.parts(), 2);
        assert_eq!(s.rows_of(0) + s.rows_of(1), 8);
    }

    #[test]
    fn stage_imbalance_of_uniform_grid_is_one() {
        let s = TileStats::model(&datasets::ARXIV, 4, VertexOrdering::Permuted);
        for stage in 0..4 {
            assert!((s.stage_imbalance(stage) - 1.0).abs() < 0.01);
        }
    }
}
