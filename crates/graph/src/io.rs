//! Parallel graph IO — the PIGO substitute.
//!
//! The paper uses PIGO (Gabert & Çatalyürek, IPDPSW '21) for parallel graph
//! ingest. We provide the same capability at the scale this reproduction
//! needs: a whitespace-separated edge-list format (one `u v [w]` per line,
//! `#`/`%` comments) parsed in parallel by splitting the input at line
//! boundaries and handing chunks to Rayon.

use mggcn_sparse::{Coo, Csr};
use rayon::prelude::*;
use std::fs;
use std::io::Write as _;
use std::path::Path;

/// Errors from graph file parsing.
#[derive(Debug)]
pub enum IoError {
    Io(std::io::Error),
    Parse { line: String, reason: &'static str },
    Empty,
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Parse { line, reason } => write!(f, "parse error ({reason}): {line:?}"),
            IoError::Empty => write!(f, "no edges found"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Weighted edges of one parsed chunk.
type EdgeChunk = Vec<(u32, u32, f32)>;

/// Parse an edge list from a string, in parallel. Vertex count is
/// `max id + 1` unless `n` is given.
pub fn parse_edge_list(text: &str, n: Option<usize>) -> Result<Csr, IoError> {
    // Split into ~per-core chunks at line boundaries.
    let chunks = line_chunks(text, rayon::current_num_threads().max(1) * 4);
    let parsed: Result<Vec<EdgeChunk>, IoError> = chunks
        .into_par_iter()
        .map(|chunk| {
            let mut edges = Vec::new();
            for line in chunk.lines() {
                let line = line.trim();
                if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
                    continue;
                }
                let mut it = line.split_whitespace();
                let u: u32 = it
                    .next()
                    .ok_or(IoError::Parse { line: line.into(), reason: "missing source" })?
                    .parse()
                    .map_err(|_| IoError::Parse { line: line.into(), reason: "bad source" })?;
                let v: u32 = it
                    .next()
                    .ok_or(IoError::Parse { line: line.into(), reason: "missing target" })?
                    .parse()
                    .map_err(|_| IoError::Parse { line: line.into(), reason: "bad target" })?;
                let w: f32 = match it.next() {
                    Some(s) => s
                        .parse()
                        .map_err(|_| IoError::Parse { line: line.into(), reason: "bad weight" })?,
                    None => 1.0,
                };
                edges.push((u, v, w));
            }
            Ok(edges)
        })
        .collect();
    let parsed = parsed?;
    let max_id = parsed
        .iter()
        .flat_map(|c| c.iter())
        .map(|&(u, v, _)| u.max(v))
        .max()
        .ok_or(IoError::Empty)?;
    let n = n.unwrap_or(max_id as usize + 1);
    if n <= max_id as usize {
        return Err(IoError::Parse { line: format!("vertex id {max_id}"), reason: "id ≥ n" });
    }
    let mut coo = Coo::with_capacity(n, n, parsed.iter().map(Vec::len).sum());
    for chunk in parsed {
        for (u, v, w) in chunk {
            coo.push(u, v, w);
        }
    }
    Ok(coo.to_csr())
}

/// Split `text` into at most `want` chunks, each ending at a line boundary.
fn line_chunks(text: &str, want: usize) -> Vec<&str> {
    if text.is_empty() {
        return vec![];
    }
    let step = (text.len() / want).max(1);
    let mut chunks = Vec::with_capacity(want + 1);
    let mut start = 0;
    while start < text.len() {
        let tentative = (start + step).min(text.len());
        let end = match text[tentative..].find('\n') {
            Some(off) => tentative + off + 1,
            None => text.len(),
        };
        chunks.push(&text[start..end]);
        start = end;
    }
    chunks
}

/// Read an edge-list file.
pub fn read_edge_list(path: &Path, n: Option<usize>) -> Result<Csr, IoError> {
    let text = fs::read_to_string(path)?;
    parse_edge_list(&text, n)
}

/// Write a CSR matrix as an edge list (unit weights are omitted).
pub fn write_edge_list(path: &Path, a: &Csr) -> Result<(), IoError> {
    let mut out = std::io::BufWriter::new(fs::File::create(path)?);
    writeln!(out, "# {} vertices, {} edges", a.rows(), a.nnz())?;
    for r in 0..a.rows() {
        for (c, v) in a.row(r) {
            if v == 1.0 {
                writeln!(out, "{r} {c}")?;
            } else {
                writeln!(out, "{r} {c} {v}")?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_basic_edges() {
        let g = parse_edge_list("0 1\n1 2 0.5\n2 0\n", None).unwrap();
        assert_eq!(g.rows(), 3);
        assert_eq!(g.nnz(), 3);
        assert_eq!(g.row(1).collect::<Vec<_>>(), vec![(2, 0.5)]);
    }

    #[test]
    fn parse_skips_comments_and_blanks() {
        let g = parse_edge_list("# header\n\n% more\n0 1\n", None).unwrap();
        assert_eq!(g.nnz(), 1);
    }

    #[test]
    fn parse_respects_explicit_n() {
        let g = parse_edge_list("0 1\n", Some(10)).unwrap();
        assert_eq!(g.rows(), 10);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_edge_list("a b\n", None).is_err());
        assert!(parse_edge_list("1\n", None).is_err());
        assert!(parse_edge_list("", None).is_err());
    }

    #[test]
    fn parse_rejects_id_out_of_range() {
        assert!(parse_edge_list("0 5\n", Some(3)).is_err());
    }

    #[test]
    fn roundtrip_through_file() {
        let mut coo = Coo::new(4, 4);
        coo.push(0, 1, 1.0);
        coo.push(1, 2, 2.5);
        coo.push(3, 0, 1.0);
        let orig = coo.to_csr();
        let path = std::env::temp_dir().join(format!("mggcn_io_test_{}.el", std::process::id()));
        write_edge_list(&path, &orig).unwrap();
        let back = read_edge_list(&path, Some(4)).unwrap();
        fs::remove_file(&path).ok();
        assert_eq!(orig, back);
    }

    #[test]
    fn large_input_parallel_parse() {
        let mut text = String::new();
        for i in 0..5000u32 {
            text.push_str(&format!("{} {}\n", i, (i + 1) % 5000));
        }
        let g = parse_edge_list(&text, None).unwrap();
        assert_eq!(g.nnz(), 5000);
        assert_eq!(g.rows(), 5000);
    }

    #[test]
    fn line_chunks_cover_everything() {
        let text = "a\nbb\nccc\ndddd\n";
        let chunks = line_chunks(text, 3);
        let joined: String = chunks.concat();
        assert_eq!(joined, text);
    }
}
