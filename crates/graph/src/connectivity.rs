//! Connected components and largest-component extraction.
//!
//! Benchmark preprocessing routinely restricts training to the largest
//! connected component (isolated vertices never receive neighbor signal
//! and pollute accuracy numbers); synthetic generators can also emit
//! fragments. BFS-based labeling plus an induced-subgraph extractor cover
//! both needs.

use crate::graph::{Graph, Split};
use mggcn_dense::Dense;
use mggcn_sparse::{Coo, Csr};
use std::collections::VecDeque;

/// Component label per vertex plus component count.
#[derive(Clone, Debug)]
pub struct Components {
    pub label: Vec<u32>,
    pub count: usize,
}

impl Components {
    /// Sizes of each component.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.count];
        for &l in &self.label {
            sizes[l as usize] += 1;
        }
        sizes
    }

    /// Label of the largest component.
    pub fn largest(&self) -> u32 {
        self.sizes().iter().enumerate().max_by_key(|&(_, s)| *s).map(|(i, _)| i as u32).unwrap_or(0)
    }
}

/// Label connected components (treating edges as undirected).
pub fn connected_components(adj: &Csr) -> Components {
    let n = adj.rows();
    // Union of A and Aᵀ for directed inputs.
    let adj_t = adj.transpose();
    let mut label = vec![u32::MAX; n];
    let mut count = 0u32;
    let mut queue = VecDeque::new();
    for start in 0..n {
        if label[start] != u32::MAX {
            continue;
        }
        label[start] = count;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            for (u, _) in adj.row(v).chain(adj_t.row(v)) {
                if label[u as usize] == u32::MAX {
                    label[u as usize] = count;
                    queue.push_back(u as usize);
                }
            }
        }
        count += 1;
    }
    Components { label, count: count as usize }
}

/// Extract the induced subgraph of the vertices where `keep` is true,
/// preserving features, labels and masks. Vertex ids are compacted in
/// original order.
pub fn induced_subgraph(graph: &Graph, keep: &[bool]) -> Graph {
    assert_eq!(keep.len(), graph.n());
    let mut new_id = vec![u32::MAX; graph.n()];
    let mut kept: Vec<usize> = Vec::new();
    for (v, &k) in keep.iter().enumerate() {
        if k {
            new_id[v] = kept.len() as u32;
            kept.push(v);
        }
    }
    let n_new = kept.len();
    assert!(n_new > 0, "induced subgraph would be empty");
    let mut coo = Coo::new(n_new, n_new);
    for (new_v, &old_v) in kept.iter().enumerate() {
        for (u, w) in graph.adj.row(old_v) {
            if new_id[u as usize] != u32::MAX {
                coo.push(new_v as u32, new_id[u as usize], w);
            }
        }
    }
    let mut features = Dense::zeros(n_new, graph.features.cols());
    let mut labels = Vec::with_capacity(n_new);
    let mut split = Split {
        train: Vec::with_capacity(n_new),
        val: Vec::with_capacity(n_new),
        test: Vec::with_capacity(n_new),
    };
    for (new_v, &old_v) in kept.iter().enumerate() {
        features.row_mut(new_v).copy_from_slice(graph.features.row(old_v));
        labels.push(graph.labels[old_v]);
        split.train.push(graph.split.train[old_v]);
        split.val.push(graph.split.val[old_v]);
        split.test.push(graph.split.test[old_v]);
    }
    Graph::new(coo.to_csr(), features, labels, graph.classes, split)
}

/// Restrict a graph to its largest connected component.
pub fn largest_component(graph: &Graph) -> Graph {
    let comps = connected_components(&graph.adj);
    let big = comps.largest();
    let keep: Vec<bool> = comps.label.iter().map(|&l| l == big).collect();
    induced_subgraph(graph, &keep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    fn two_triangles_and_a_loner() -> Csr {
        // {0,1,2} triangle, {3,4,5} triangle, vertex 6 isolated.
        let mut coo = Coo::new(7, 7);
        for &(a, b) in &[(0u32, 1u32), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)] {
            coo.push(a, b, 1.0);
            coo.push(b, a, 1.0);
        }
        coo.to_csr()
    }

    #[test]
    fn counts_components() {
        let c = connected_components(&two_triangles_and_a_loner());
        assert_eq!(c.count, 3);
        let mut sizes = c.sizes();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![1, 3, 3]);
    }

    #[test]
    fn directed_edges_connect_both_ways() {
        // Only 0 -> 1 stored; still one component.
        let mut coo = Coo::new(2, 2);
        coo.push(0, 1, 1.0);
        let c = connected_components(&coo.to_csr());
        assert_eq!(c.count, 1);
    }

    #[test]
    fn largest_component_extraction() {
        let adj = two_triangles_and_a_loner();
        let g = Graph::synthesize(adj, 3, 2, 1);
        let lcc = largest_component(&g);
        assert_eq!(lcc.n(), 3);
        assert_eq!(lcc.adj.nnz(), 6);
        // Every vertex keeps a valid label/mask/feature row.
        assert_eq!(lcc.labels.len(), 3);
        assert_eq!(lcc.features.rows(), 3);
    }

    #[test]
    fn induced_subgraph_preserves_attributes() {
        let adj = two_triangles_and_a_loner();
        let g = Graph::synthesize(adj, 4, 3, 2);
        let keep: Vec<bool> = (0..7).map(|v| v < 3).collect();
        let sub = induced_subgraph(&g, &keep);
        for v in 0..3 {
            assert_eq!(sub.labels[v], g.labels[v]);
            assert_eq!(sub.features.row(v), g.features.row(v));
            assert_eq!(sub.split.train[v], g.split.train[v]);
        }
    }

    #[test]
    fn fully_connected_graph_is_one_component() {
        let mut coo = Coo::new(5, 5);
        for i in 0..5u32 {
            for j in 0..5u32 {
                if i != j {
                    coo.push(i, j, 1.0);
                }
            }
        }
        assert_eq!(connected_components(&coo.to_csr()).count, 1);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_induced_subgraph_rejected() {
        let g = Graph::synthesize(two_triangles_and_a_loner(), 2, 2, 3);
        let _ = induced_subgraph(&g, &[false; 7]);
    }
}
