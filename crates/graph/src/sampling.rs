//! Neighborhood sampling — the mini-batch alternative the paper argues
//! against (§1).
//!
//! Mini-batch GNN training grows a computation graph backwards from the
//! batch vertices through `L` hops. On power-law graphs the frontier
//! explodes: "starting from the mini-batch nodes, it is possible to reach
//! almost every single node in the graph in just a few hops" (§1). This
//! module provides the machinery to *measure* that claim — exact k-hop
//! frontiers and GraphSAGE-style fanout-capped samplers — plus the
//! subgraph extraction a mini-batch trainer needs.

use mggcn_sparse::{Coo, Csr};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The expanded computation graph of one mini-batch.
#[derive(Clone, Debug)]
pub struct SampledBlock {
    /// All vertices needed, batch first, then each deeper hop.
    pub vertices: Vec<u32>,
    /// Number of vertices per hop layer: `layer_sizes[0]` is the batch.
    pub layer_sizes: Vec<usize>,
    /// Edges of the sampled subgraph in *local* indices over `vertices`.
    pub adj: Csr,
}

impl SampledBlock {
    /// Total vertices touched by this batch.
    pub fn touched(&self) -> usize {
        self.vertices.len()
    }

    /// The expansion factor: touched vertices per batch vertex.
    pub fn explosion_factor(&self) -> f64 {
        self.touched() as f64 / self.layer_sizes[0].max(1) as f64
    }
}

/// Exact `hops`-hop in-neighborhood of `batch` (no fanout cap) — the
/// worst case a full-gradient mini-batch would need.
pub fn khop_neighborhood(adj: &Csr, batch: &[u32], hops: usize) -> Vec<u32> {
    let mut seen = vec![false; adj.rows()];
    let mut all = Vec::new();
    let mut frontier: Vec<u32> = Vec::new();
    for &v in batch {
        if !seen[v as usize] {
            seen[v as usize] = true;
            all.push(v);
            frontier.push(v);
        }
    }
    for _ in 0..hops {
        let mut next = Vec::new();
        for &v in &frontier {
            for (u, _) in adj.row(v as usize) {
                if !seen[u as usize] {
                    seen[u as usize] = true;
                    all.push(u);
                    next.push(u);
                }
            }
        }
        if next.is_empty() {
            break;
        }
        frontier = next;
    }
    all
}

/// The induced k-hop computation block of one inference batch.
#[derive(Clone, Debug, PartialEq)]
pub struct InducedBlock {
    /// Global ids of the block's vertices, in **ascending** order.
    pub vertices: Vec<u32>,
    /// BFS hop distance from the seed set, indexed by local vertex id.
    pub dist: Vec<u32>,
    /// Induced subgraph in local indices, original edge values preserved.
    pub adj: Csr,
}

impl InducedBlock {
    /// Local indices of all vertices at distance ≤ `d` from the seeds.
    pub fn locals_within(&self, d: u32) -> Vec<u32> {
        (0..self.vertices.len() as u32).filter(|&l| self.dist[l as usize] <= d).collect()
    }

    /// Local index of a global vertex id, if it is in the block.
    pub fn local_of(&self, global: u32) -> Option<u32> {
        self.vertices.binary_search(&global).ok().map(|i| i as u32)
    }
}

/// Exact `hops`-hop induced subgraph around `seeds` — the computation
/// block a batched inference request needs.
///
/// Unlike [`khop_neighborhood`] this also extracts the edges (with their
/// values) among the reached vertices, relabeled to local indices. Local
/// ids are assigned in **ascending global order**, so every induced row's
/// columns appear in the same relative order as in the full graph; for a
/// vertex at distance < `hops` (whose neighborhood is entirely inside the
/// block) an SpMM over its induced row therefore accumulates in exactly
/// the full-graph order and is bit-identical to the full-graph result.
pub fn khop_induced(adj: &Csr, seeds: &[u32], hops: usize) -> InducedBlock {
    let n = adj.rows();
    let mut dist_of = vec![u32::MAX; n];
    let mut frontier: Vec<u32> = Vec::new();
    for &v in seeds {
        if dist_of[v as usize] == u32::MAX {
            dist_of[v as usize] = 0;
            frontier.push(v);
        }
    }
    let mut reached: Vec<u32> = frontier.clone();
    for h in 1..=hops as u32 {
        let mut next = Vec::new();
        for &v in &frontier {
            for (u, _) in adj.row(v as usize) {
                if dist_of[u as usize] == u32::MAX {
                    dist_of[u as usize] = h;
                    reached.push(u);
                    next.push(u);
                }
            }
        }
        if next.is_empty() {
            break;
        }
        frontier = next;
    }

    reached.sort_unstable();
    let mut local_of = vec![u32::MAX; n];
    for (l, &g) in reached.iter().enumerate() {
        local_of[g as usize] = l as u32;
    }

    let mut row_ptr = Vec::with_capacity(reached.len() + 1);
    let mut col_idx = Vec::new();
    let mut values = Vec::new();
    row_ptr.push(0usize);
    for &g in &reached {
        for (u, v) in adj.row(g as usize) {
            let lu = local_of[u as usize];
            if lu != u32::MAX {
                col_idx.push(lu);
                values.push(v);
            }
        }
        row_ptr.push(col_idx.len());
    }
    let n_local = reached.len();
    let sub = Csr::from_parts(n_local, n_local, row_ptr, col_idx, values);
    let dist = reached.iter().map(|&g| dist_of[g as usize]).collect();
    InducedBlock { vertices: reached, dist, adj: sub }
}

/// GraphSAGE-style sampling: at each hop keep at most `fanout` random
/// neighbors per frontier vertex. Returns the sampled block with its local
/// subgraph (edges from each layer's vertices to their sampled neighbors).
pub fn sample_block(adj: &Csr, batch: &[u32], fanouts: &[usize], seed: u64) -> SampledBlock {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut local_of = vec![u32::MAX; adj.rows()];
    let mut vertices: Vec<u32> = Vec::new();
    let mut layer_sizes = Vec::with_capacity(fanouts.len() + 1);
    let mut edges: Vec<(u32, u32)> = Vec::new();

    let intern = |v: u32, vertices: &mut Vec<u32>, local_of: &mut Vec<u32>| -> u32 {
        if local_of[v as usize] == u32::MAX {
            local_of[v as usize] = vertices.len() as u32;
            vertices.push(v);
        }
        local_of[v as usize]
    };

    let mut frontier: Vec<u32> = Vec::new();
    for &v in batch {
        let l = intern(v, &mut vertices, &mut local_of);
        if (l as usize) == vertices.len() - 1 {
            frontier.push(v);
        }
    }
    layer_sizes.push(vertices.len());

    for &fanout in fanouts {
        let mut next = Vec::new();
        let before = vertices.len();
        for &v in &frontier {
            let lv = local_of[v as usize];
            let neigh: Vec<u32> = adj.row(v as usize).map(|(u, _)| u).collect();
            let picks: Vec<u32> = if neigh.len() <= fanout {
                neigh
            } else {
                // Floyd's algorithm would avoid the clone; sampling without
                // replacement via partial shuffle is clear and fine here.
                let mut pool = neigh;
                for i in 0..fanout {
                    let j = rng.gen_range(i..pool.len());
                    pool.swap(i, j);
                }
                pool.truncate(fanout);
                pool
            };
            for u in picks {
                let was_new = local_of[u as usize] == u32::MAX;
                let lu = intern(u, &mut vertices, &mut local_of);
                edges.push((lv, lu));
                if was_new {
                    next.push(u);
                }
            }
        }
        layer_sizes.push(vertices.len() - before);
        frontier = next;
        if frontier.is_empty() {
            break;
        }
    }

    let n_local = vertices.len();
    let mut coo = Coo::with_capacity(n_local, n_local, edges.len());
    for (a, b) in edges {
        coo.push(a, b, 1.0);
    }
    let mut sub = coo.to_csr();
    sub.binarize();
    SampledBlock { vertices, layer_sizes, adj: sub }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::chung_lu;

    fn star(n: usize) -> Csr {
        // Vertex 0 connected to everyone.
        let mut coo = Coo::new(n, n);
        for i in 1..n as u32 {
            coo.push(0, i, 1.0);
            coo.push(i, 0, 1.0);
        }
        coo.to_csr()
    }

    #[test]
    fn khop_on_star_reaches_everything_in_two() {
        let g = star(50);
        let one = khop_neighborhood(&g, &[1], 1);
        assert_eq!(one.len(), 2); // itself + hub
        let two = khop_neighborhood(&g, &[1], 2);
        assert_eq!(two.len(), 50); // hub fans out to everyone
    }

    #[test]
    fn khop_zero_hops_is_the_batch() {
        let g = star(10);
        let zero = khop_neighborhood(&g, &[3, 7, 3], 0);
        assert_eq!(zero, vec![3, 7]);
    }

    #[test]
    fn induced_block_on_star_has_expected_shape() {
        let g = star(20);
        let block = khop_induced(&g, &[5], 1);
        // 5 and the hub, ascending.
        assert_eq!(block.vertices, vec![0, 5]);
        assert_eq!(block.dist, vec![1, 0]);
        // Induced edges: 0<->5 in both directions.
        assert_eq!(block.adj.nnz(), 2);
        assert_eq!(block.local_of(5), Some(1));
        assert_eq!(block.local_of(7), None);
        assert_eq!(block.locals_within(0), vec![1]);
    }

    #[test]
    fn induced_interior_rows_keep_full_degree() {
        let degrees = vec![6u32; 150];
        let g = chung_lu::generate(&degrees, 11);
        let block = khop_induced(&g, &[3, 40, 90], 2);
        for (l, &gid) in block.vertices.iter().enumerate() {
            if block.dist[l] < 2 {
                // Whole neighborhood is inside the block.
                assert_eq!(
                    block.adj.row_nnz(l),
                    g.row_nnz(gid as usize),
                    "vertex {gid} lost edges"
                );
            }
        }
    }

    #[test]
    fn induced_vertices_ascend_and_cover_khop() {
        let degrees = vec![5u32; 120];
        let g = chung_lu::generate(&degrees, 13);
        let block = khop_induced(&g, &[7, 7, 22], 2);
        assert!(block.vertices.windows(2).all(|w| w[0] < w[1]));
        let mut reach = khop_neighborhood(&g, &[7, 22], 2);
        reach.sort_unstable();
        assert_eq!(block.vertices, reach);
    }

    #[test]
    fn induced_rows_preserve_values_and_order() {
        let degrees = vec![6u32; 100];
        let g = chung_lu::generate(&degrees, 17);
        let block = khop_induced(&g, &[0, 50], 1);
        for (l, &gid) in block.vertices.iter().enumerate() {
            let induced: Vec<(u32, f32)> = block.adj.row(l).collect();
            let expect: Vec<(u32, f32)> = g
                .row(gid as usize)
                .filter_map(|(u, v)| block.local_of(u).map(|lu| (lu, v)))
                .collect();
            assert_eq!(induced, expect);
        }
    }

    #[test]
    fn sample_block_respects_fanout() {
        let g = star(100);
        let block = sample_block(&g, &[0], &[5], 1);
        // Batch vertex 0 has 99 neighbors but fanout 5.
        assert_eq!(block.layer_sizes[0], 1);
        assert!(block.layer_sizes[1] <= 5);
        assert_eq!(block.touched(), 1 + block.layer_sizes[1]);
    }

    #[test]
    fn sample_block_edges_are_local_and_valid() {
        let degrees = vec![6u32; 200];
        let g = chung_lu::generate(&degrees, 3);
        let block = sample_block(&g, &[1, 2, 3], &[4, 4], 7);
        assert_eq!(block.adj.rows(), block.touched());
        for r in 0..block.adj.rows() {
            for (c, _) in block.adj.row(r) {
                assert!((c as usize) < block.touched());
            }
        }
    }

    #[test]
    fn explosion_grows_with_hops_on_dense_graphs() {
        let degrees = vec![20u32; 2000];
        let g = chung_lu::generate(&degrees, 5);
        let batch: Vec<u32> = (0..10).collect();
        let h1 = khop_neighborhood(&g, &batch, 1).len();
        let h2 = khop_neighborhood(&g, &batch, 2).len();
        let h3 = khop_neighborhood(&g, &batch, 3).len();
        assert!(h2 > h1 * 3, "h1 {h1} h2 {h2}");
        assert!(h3 > 1000, "3 hops should reach most of the graph, got {h3}");
    }

    #[test]
    fn deterministic_sampling() {
        let degrees = vec![8u32; 100];
        let g = chung_lu::generate(&degrees, 9);
        let a = sample_block(&g, &[5, 6], &[3, 3], 42);
        let b = sample_block(&g, &[5, 6], &[3, 3], 42);
        assert_eq!(a.vertices, b.vertices);
        assert_eq!(a.adj, b.adj);
    }
}
