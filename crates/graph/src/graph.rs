//! The labeled-graph container consumed by trainers.

use mggcn_dense::Dense;
use mggcn_sparse::Csr;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Train/validation/test vertex masks for transductive node classification
/// (the paper's task; §6 trains Reddit in the transductive setting).
#[derive(Clone, Debug)]
pub struct Split {
    pub train: Vec<bool>,
    pub val: Vec<bool>,
    pub test: Vec<bool>,
}

impl Split {
    /// Random split with the given train/val fractions (rest is test).
    pub fn random(n: usize, train_frac: f64, val_frac: f64, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut train = vec![false; n];
        let mut val = vec![false; n];
        let mut test = vec![false; n];
        for i in 0..n {
            let x: f64 = rng.gen();
            if x < train_frac {
                train[i] = true;
            } else if x < train_frac + val_frac {
                val[i] = true;
            } else {
                test[i] = true;
            }
        }
        Self { train, val, test }
    }

    pub fn train_count(&self) -> usize {
        self.train.iter().filter(|&&b| b).count()
    }
}

/// A node-classification dataset: adjacency, features, labels, split.
///
/// `adj` is the raw (un-normalized) adjacency; trainers derive the paper's
/// `Â` (eq. 2) from it. An edge `(u, v)` means `u → v`; vertex `v` averages
/// over its in-neighbors.
#[derive(Clone, Debug)]
pub struct Graph {
    pub adj: Csr,
    pub features: Dense,
    pub labels: Vec<u32>,
    pub classes: usize,
    pub split: Split,
}

impl Graph {
    pub fn new(adj: Csr, features: Dense, labels: Vec<u32>, classes: usize, split: Split) -> Self {
        assert_eq!(adj.rows(), adj.cols(), "adjacency must be square");
        assert_eq!(adj.rows(), features.rows(), "feature rows must match vertices");
        assert_eq!(adj.rows(), labels.len(), "labels must match vertices");
        Self { adj, features, labels, classes, split }
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.adj.rows()
    }

    /// Attach random features, structure-free random labels, and a 60/20/20
    /// split to a bare adjacency — used for throughput-oriented replicas
    /// where only the sparsity pattern matters.
    pub fn synthesize(adj: Csr, feat_dim: usize, classes: usize, seed: u64) -> Self {
        let n = adj.rows();
        let mut rng = SmallRng::seed_from_u64(seed);
        let features = Dense::from_fn(n, feat_dim, |_, _| rng.gen_range(-1.0f32..1.0) * 0.5);
        let labels = (0..n).map(|_| rng.gen_range(0..classes as u32)).collect();
        let split = Split::random(n, 0.6, 0.2, seed ^ 0xc2b2_ae35);
        Self::new(adj, features, labels, classes, split)
    }

    /// The normalized adjacency `Â` of paper eq. 2 (columns sum to one) and
    /// its transpose `Âᵀ` (used in the forward pass, eq. 6).
    pub fn normalized_adj(&self) -> (Csr, Csr) {
        let a_hat = self.adj.normalize_columns();
        let a_hat_t = a_hat.transpose();
        (a_hat, a_hat_t)
    }

    /// Apply a symmetric vertex permutation to every aligned component
    /// (adjacency, features, labels, masks) — the §5.2 preprocessing step.
    /// `perm[old] = new`.
    pub fn permute(&self, perm: &[u32]) -> Graph {
        let n = self.n();
        assert_eq!(perm.len(), n);
        let adj = self.adj.permute_symmetric(perm);
        let mut features = Dense::zeros(n, self.features.cols());
        let mut labels = vec![0u32; n];
        let mut split = Split { train: vec![false; n], val: vec![false; n], test: vec![false; n] };
        for (old, &new) in perm.iter().enumerate() {
            let new = new as usize;
            features.row_mut(new).copy_from_slice(self.features.row(old));
            labels[new] = self.labels[old];
            split.train[new] = self.split.train[old];
            split.val[new] = self.split.val[old];
            split.test[new] = self.split.test[old];
        }
        Graph { adj, features, labels, classes: self.classes, split }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mggcn_sparse::Coo;

    fn path_graph(n: usize) -> Csr {
        let mut coo = Coo::new(n, n);
        for i in 0..n - 1 {
            coo.push(i as u32, (i + 1) as u32, 1.0);
            coo.push((i + 1) as u32, i as u32, 1.0);
        }
        coo.to_csr()
    }

    #[test]
    fn synthesize_shapes() {
        let g = Graph::synthesize(path_graph(10), 4, 3, 1);
        assert_eq!(g.n(), 10);
        assert_eq!(g.features.cols(), 4);
        assert!(g.labels.iter().all(|&l| l < 3));
    }

    #[test]
    fn split_covers_all_vertices_once() {
        let s = Split::random(1000, 0.5, 0.25, 3);
        for i in 0..1000 {
            let count = [s.train[i], s.val[i], s.test[i]].iter().filter(|&&b| b).count();
            assert_eq!(count, 1, "vertex {i} in {count} splits");
        }
    }

    #[test]
    fn normalized_adj_columns_sum_to_one() {
        let g = Graph::synthesize(path_graph(6), 2, 2, 5);
        let (a_hat, a_hat_t) = g.normalized_adj();
        let d = a_hat.to_dense();
        for c in 0..6 {
            let s: f32 = (0..6).map(|r| d.get(r, c)).sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
        // Transpose relationship.
        assert_eq!(a_hat_t.to_dense().max_abs_diff(&d.transpose()), 0.0);
    }

    #[test]
    fn permute_keeps_labels_aligned_with_structure() {
        let g = Graph::synthesize(path_graph(8), 3, 4, 9);
        let perm: Vec<u32> = (0..8).rev().collect(); // reversal
        let pg = g.permute(&perm);
        // Vertex old=2 becomes new=5: same label, same feature row.
        assert_eq!(pg.labels[5], g.labels[2]);
        assert_eq!(pg.features.row(5), g.features.row(2));
        // Degree sequence preserved under relabeling.
        let mut d1: Vec<usize> = (0..8).map(|r| g.adj.row_nnz(r)).collect();
        let mut d2: Vec<usize> = (0..8).map(|r| pg.adj.row_nnz(r)).collect();
        d1.sort_unstable();
        d2.sort_unstable();
        assert_eq!(d1, d2);
    }
}
