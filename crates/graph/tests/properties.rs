//! Property-based tests for graph generation, permutation, tile
//! statistics, and IO.

use mggcn_graph::generators::{chung_lu, degree, sbm};
use mggcn_graph::io;
use mggcn_graph::permutation::{invert, is_permutation, random_permutation};
use mggcn_graph::tilestats::{TileStats, VertexOrdering};
use mggcn_graph::{datasets, Graph, Split};
use proptest::prelude::*;

proptest! {
    #[test]
    fn random_permutation_is_always_a_bijection(n in 0usize..500, seed in 0u64..10_000) {
        let p = random_permutation(n, seed);
        prop_assert!(is_permutation(&p));
    }

    #[test]
    fn permutation_inverse_roundtrips(n in 1usize..300, seed in 0u64..10_000) {
        let p = random_permutation(n, seed);
        let inv = invert(&p);
        for (old, &new) in p.iter().enumerate() {
            prop_assert_eq!(inv[new as usize] as usize, old);
        }
        prop_assert!(is_permutation(&inv));
    }

    #[test]
    fn graph_permutation_preserves_degree_multiset(seed in 0u64..200, pseed in 0u64..200) {
        let degrees = degree::sample_degrees(
            &degree::DegreeModel::power_law(4.0, 2.5, 60),
            60,
            seed,
        );
        let adj = chung_lu::generate(&degrees, seed);
        let g = Graph::synthesize(adj, 4, 3, seed);
        let perm = random_permutation(g.n(), pseed);
        let pg = g.permute(&perm);
        let mut d1: Vec<usize> = (0..g.n()).map(|v| g.adj.row_nnz(v)).collect();
        let mut d2: Vec<usize> = (0..g.n()).map(|v| pg.adj.row_nnz(v)).collect();
        d1.sort_unstable();
        d2.sort_unstable();
        prop_assert_eq!(d1, d2);
    }

    #[test]
    fn permutation_commutes_with_normalization(seed in 0u64..100) {
        // Â(P·G) == P·Â(G): normalize-then-permute equals permute-then-
        // normalize. This is what makes §5.2 a pure load-balance move.
        let degrees = vec![3u32; 40];
        let adj = chung_lu::generate(&degrees, seed);
        let g = Graph::synthesize(adj, 2, 2, seed);
        let perm = random_permutation(g.n(), seed ^ 7);
        let pg = g.permute(&perm);
        let (a1, _) = pg.normalized_adj();
        let (a0, _) = g.normalized_adj();
        let a0p = a0.permute_symmetric(&perm);
        prop_assert!(a1.to_dense().max_abs_diff(&a0p.to_dense()) < 1e-5);
    }

    #[test]
    fn degree_sampling_hits_target_mean(avg in 2.0f64..40.0, exp in 1.8f64..3.0, seed in 0u64..100) {
        let model = degree::DegreeModel::power_law(avg, exp, 5_000);
        let d = degree::sample_degrees(&model, 5_000, seed);
        let mean = degree::mean_degree(&d);
        prop_assert!((mean - avg).abs() / avg < 0.25, "mean {mean} target {avg}");
        prop_assert!(d.iter().all(|&x| x >= 1));
    }

    #[test]
    fn chung_lu_is_loop_free_symmetric(seed in 0u64..100, n in 10usize..80) {
        let degrees = vec![4u32; n];
        let g = chung_lu::generate(&degrees, seed);
        let d = g.to_dense();
        for i in 0..n {
            prop_assert_eq!(d.get(i, i), 0.0);
            for j in 0..n {
                prop_assert_eq!(d.get(i, j), d.get(j, i));
            }
        }
    }

    #[test]
    fn sbm_labels_and_masks_are_consistent(n in 50usize..200, k in 2usize..6, seed in 0u64..100) {
        let g = sbm::generate(&sbm::SbmConfig::community_benchmark(n, k), seed);
        prop_assert_eq!(g.n(), n);
        prop_assert!(g.labels.iter().all(|&l| (l as usize) < k));
        for v in 0..n {
            let memberships = [g.split.train[v], g.split.val[v], g.split.test[v]]
                .iter()
                .filter(|&&b| b)
                .count();
            prop_assert_eq!(memberships, 1);
        }
    }

    #[test]
    fn split_fractions_are_respected(n in 200usize..2000, tf in 0.1f64..0.7, seed in 0u64..50) {
        let s = Split::random(n, tf, 0.1, seed);
        let frac = s.train_count() as f64 / n as f64;
        prop_assert!((frac - tf).abs() < 0.1, "train frac {frac} target {tf}");
    }

    #[test]
    fn tilestats_conserves_mass(parts in 1usize..9, permuted in any::<bool>()) {
        let ordering = if permuted { VertexOrdering::Permuted } else { VertexOrdering::Original };
        let s = TileStats::model(&datasets::ARXIV, parts, ordering);
        let total = s.total_nnz() as f64;
        let target = datasets::ARXIV.m as f64;
        prop_assert!((total - target).abs() / target < 0.08, "total {total} vs {target}");
        let rows: usize = (0..parts).map(|i| s.rows_of(i)).sum();
        prop_assert_eq!(rows, datasets::ARXIV.n);
    }

    #[test]
    fn permuted_never_more_imbalanced_than_original(parts in 2usize..9) {
        for card in [datasets::ARXIV, datasets::PRODUCTS, datasets::REDDIT] {
            let orig = TileStats::model(&card, parts, VertexOrdering::Original);
            let perm = TileStats::model(&card, parts, VertexOrdering::Permuted);
            prop_assert!(perm.max_imbalance() <= orig.max_imbalance() + 1e-9);
        }
    }

    #[test]
    fn edge_list_roundtrip(entries in proptest::collection::vec((0u32..40, 0u32..40, 1u32..100), 1..80)) {
        let mut coo = mggcn_sparse::Coo::new(40, 40);
        for &(u, v, w) in &entries {
            coo.push(u, v, w as f32 * 0.5);
        }
        let orig = coo.to_csr();
        let mut text = String::new();
        for r in 0..orig.rows() {
            for (c, v) in orig.row(r) {
                text.push_str(&format!("{r} {c} {v}\n"));
            }
        }
        if orig.nnz() > 0 {
            let back = io::parse_edge_list(&text, Some(40)).unwrap();
            prop_assert_eq!(back, orig);
        }
    }
}

// Serving-path kernels: an induced k-hop block's SpMM must reproduce the
// full-graph SpMM rows it covers *exactly* (bit-identical), for any vertex
// permutation and any number of requested seeds. This is the invariant the
// propagation cache in `mggcn-serve` relies on.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn induced_spmm_bit_identical_to_full_rows(
        gseed in 0u64..500,
        pseed in 0u64..500,
        hops in 1usize..4,
        d in 1usize..6,
        seeds in proptest::collection::vec(0u32..120, 1..8),
    ) {
        use mggcn_dense::{Accumulate, Dense};
        use mggcn_graph::sampling::khop_induced;
        use mggcn_sparse::{spmm, spmm_rows};

        let degrees = vec![5u32; 120];
        // Normalized + transposed adjacency: non-trivial float values, and
        // the matrix the GCN forward pass actually multiplies by.
        let adj = chung_lu::generate(&degrees, gseed)
            .permute_symmetric(&random_permutation(120, pseed))
            .normalize_columns()
            .transpose();
        let b = Dense::from_fn(120, d, |r, c| ((r * d + c) as f32).sin());
        let mut full = Dense::zeros(120, d);
        spmm(&adj, &b, &mut full, Accumulate::Overwrite);

        let block = khop_induced(&adj, &seeds, hops);
        let bl = Dense::from_fn(block.vertices.len(), d, |r, c| {
            b.get(block.vertices[r] as usize, c)
        });
        // Vertices at distance < hops have their whole in-neighborhood
        // inside the block, so their induced rows are complete.
        let rows = block.locals_within(hops as u32 - 1);
        let mut out = Dense::zeros(rows.len(), d);
        spmm_rows(&block.adj, &rows, &bl, &mut out, Accumulate::Overwrite);
        for (i, &l) in rows.iter().enumerate() {
            let g = block.vertices[l as usize] as usize;
            prop_assert_eq!(out.row(i), full.row(g), "vertex {} differs", g);
        }
    }
}
