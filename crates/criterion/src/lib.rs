//! In-tree, dependency-free stand-in for `criterion`.
//!
//! The build environment resolves crates hermetically (no registry
//! access), so this crate provides the criterion 0.5 API subset the
//! workspace's benchmarks use: `Criterion`, `benchmark_group` with
//! `sample_size`/`measurement_time`, `bench_function`/`bench_with_input`,
//! `BenchmarkId`, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Instead of criterion's statistical machinery it runs a short warmup,
//! then times `sample_size` batches and prints min/mean per-iteration
//! times. Good enough to eyeball regressions; not a statistics suite.

#![forbid(unsafe_code)]

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Top-level harness handle, passed to every benchmark function.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
        }
    }
}

/// Display label for one parameterized benchmark case.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn from_parameter(p: impl std::fmt::Display) -> Self {
        Self { id: p.to_string() }
    }

    pub fn new(name: impl Into<String>, p: impl std::fmt::Display) -> Self {
        Self { id: format!("{}/{}", name.into(), p) }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// A named group of related benchmarks sharing sampling settings.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size, self.measurement_time);
        f(&mut b);
        b.report(&self.name, &id.to_string());
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.sample_size, self.measurement_time);
        f(&mut b, input);
        b.report(&self.name, &id.to_string());
        self
    }

    pub fn finish(self) {}
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    fn new(sample_size: usize, measurement_time: Duration) -> Self {
        Self { sample_size, measurement_time, samples: Vec::new(), iters_per_sample: 1 }
    }

    /// Time `routine`: calibrate iterations per sample against the
    /// measurement budget, then record `sample_size` timed samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup + calibration: one untimed call, then estimate cost.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let budget = self.measurement_time.max(Duration::from_millis(10));
        let per_sample = budget.as_nanos() / self.sample_size.max(1) as u128;
        self.iters_per_sample = (per_sample / once.as_nanos().max(1)).clamp(1, 1_000_000) as u64;

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, group: &str, id: &str) {
        if self.samples.is_empty() {
            println!("{group}/{id}: no samples (bencher.iter never called)");
            return;
        }
        let per_iter: Vec<f64> =
            self.samples.iter().map(|d| d.as_secs_f64() / self.iters_per_sample as f64).collect();
        let min = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        println!(
            "{group}/{id}: min {:.3} ms, mean {:.3} ms ({} samples x {} iters)",
            min * 1e3,
            mean * 1e3,
            self.samples.len(),
            self.iters_per_sample
        );
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` runs bench targets with --test; nothing to do.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        group.sample_size(3).measurement_time(Duration::from_millis(30));
        let mut hits = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                hits += 1;
                black_box(hits)
            })
        });
        group.bench_with_input(BenchmarkId::from_parameter("x"), &(), |b, ()| {
            b.iter(|| black_box(1 + 1))
        });
        group.finish();
        assert!(hits > 0);
    }
}
